//! Strongly typed physical quantities.
//!
//! Newtypes keep seconds, bytes, hertz and decibel-milliwatts from being
//! mixed up in the latency arithmetic (C-NEWTYPE). Only the operations the
//! models actually need are provided.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A duration in seconds (f64, non-negative by construction in the models).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration.
    pub fn new(secs: f64) -> Self {
        Seconds(secs)
    }

    /// The value in seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0
    }

    /// The larger of two durations.
    pub fn max(self, other: Seconds) -> Seconds {
        Seconds(self.0.max(other.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        iter.fold(Seconds::ZERO, Add::add)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// A payload size in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// The raw count.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// The count as bits (for rate arithmetic).
    pub fn as_bits(&self) -> u64 {
        self.0 * 8
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 20 {
            write!(f, "{:.2}MiB", self.0 as f64 / (1 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A frequency / bandwidth in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency.
    pub fn new(hz: f64) -> Self {
        Hertz(hz)
    }

    /// Convenience constructor in MHz.
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// The value in hertz.
    pub fn as_hz(&self) -> f64 {
        self.0
    }

    /// Scales the bandwidth by a fraction (allocation).
    pub fn fraction(&self, f: f64) -> Hertz {
        Hertz(self.0 * f)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2}MHz", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2}kHz", self.0 / 1e3)
        } else {
            write!(f, "{:.1}Hz", self.0)
        }
    }
}

/// A power level in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

impl Dbm {
    /// Creates a power level.
    pub fn new(dbm: f64) -> Self {
        Dbm(dbm)
    }

    /// The value in dBm.
    pub fn as_dbm(&self) -> f64 {
        self.0
    }

    /// Converts to milliwatts.
    pub fn to_milliwatts(&self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Builds from milliwatts.
    ///
    /// # Panics
    ///
    /// Panics when `mw` is not positive (−∞ dBm is not representable).
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(mw > 0.0, "power must be positive");
        Dbm(10.0 * mw.log10())
    }

    /// Subtracts a loss in dB.
    pub fn minus_db(&self, db: f64) -> Dbm {
        Dbm(self.0 - db)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}dBm", self.0)
    }
}

/// A distance in meters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Meters(f64);

impl Meters {
    /// Creates a distance.
    pub fn new(m: f64) -> Self {
        Meters(m)
    }

    /// The value in meters.
    pub fn as_meters(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}m", self.0)
    }
}

/// A compute rate in FLOP/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct FlopsRate(f64);

impl FlopsRate {
    /// Creates a rate.
    pub fn new(flops_per_sec: f64) -> Self {
        FlopsRate(flops_per_sec)
    }

    /// Convenience constructor in GFLOP/s.
    pub fn from_gflops(g: f64) -> Self {
        FlopsRate(g * 1e9)
    }

    /// The value in FLOP/s.
    pub fn as_flops_per_sec(&self) -> f64 {
        self.0
    }

    /// Time to execute `flops` operations at this rate.
    ///
    /// Returns zero time for a zero rate guard to avoid division by zero —
    /// models validate rates at construction.
    pub fn time_for(&self, flops: u64) -> Seconds {
        if self.0 <= 0.0 {
            return Seconds::ZERO;
        }
        Seconds::new(flops as f64 / self.0)
    }
}

impl fmt::Display for FlopsRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GFLOP/s", self.0 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!((a + b).as_secs_f64(), 2.0);
        assert_eq!((a - b).as_secs_f64(), 1.0);
        assert_eq!(a.max(b), a);
        let total: Seconds = [a, b].into_iter().sum();
        assert_eq!(total.as_secs_f64(), 2.0);
    }

    #[test]
    fn bytes_bits_and_display() {
        assert_eq!(Bytes::new(10).as_bits(), 80);
        assert_eq!(Bytes::new(512).to_string(), "512B");
        assert_eq!(Bytes::new(2048).to_string(), "2.00KiB");
        assert!(Bytes::new(3 << 20).to_string().contains("MiB"));
    }

    #[test]
    fn dbm_milliwatt_round_trip() {
        for dbm in [-30.0, 0.0, 23.0] {
            let p = Dbm::new(dbm);
            let back = Dbm::from_milliwatts(p.to_milliwatts());
            assert!((back.as_dbm() - dbm).abs() < 1e-9);
        }
        assert_eq!(Dbm::new(0.0).to_milliwatts(), 1.0);
        assert!((Dbm::new(30.0).to_milliwatts() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn flops_rate_time() {
        let r = FlopsRate::from_gflops(2.0);
        assert!((r.time_for(4_000_000_000).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(FlopsRate::new(0.0).time_for(100), Seconds::ZERO);
    }

    #[test]
    fn hertz_helpers() {
        assert_eq!(Hertz::from_mhz(5.0).as_hz(), 5e6);
        assert_eq!(Hertz::new(100.0).fraction(0.25).as_hz(), 25.0);
        assert_eq!(Hertz::from_mhz(1.0).to_string(), "1.00MHz");
    }
}
