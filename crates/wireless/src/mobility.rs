//! Client mobility models.
//!
//! A [`Mobility`] model maps a client's *placement* distance (where the
//! topology put it) to its *effective* distance in a given round, so a
//! time-varying environment can drive path-loss drift without touching
//! the link-budget math. All models are deterministic functions of
//! `(client, round)` — repeated queries agree and experiments reproduce.

use crate::units::Meters;
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A deterministic client-mobility process.
pub trait Mobility: std::fmt::Debug + Send + Sync {
    /// The effective AP distance of `client` in `round`, given the
    /// distance the topology placed it at.
    fn distance_at(&self, client: usize, placed: Meters, round: u64) -> Meters;
}

/// No movement: every round sees the placement distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Stationary;

impl Mobility for Stationary {
    fn distance_at(&self, _client: usize, placed: Meters, _round: u64) -> Meters {
        placed
    }
}

/// Smooth periodic drift around the placement distance.
///
/// Client `c` oscillates sinusoidally with relative amplitude
/// `amplitude_frac` and period `period_rounds`, phase-shifted per client
/// so the fleet does not move in lockstep. Models pedestrians circling a
/// cell: pathloss drifts slowly and coherently across rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbitDrift {
    /// Peak deviation as a fraction of the placement distance (e.g. 0.4
    /// swings between 0.6× and 1.4×).
    pub amplitude_frac: f64,
    /// Rounds per full oscillation.
    pub period_rounds: u64,
}

impl Default for OrbitDrift {
    fn default() -> Self {
        OrbitDrift {
            amplitude_frac: 0.5,
            period_rounds: 20,
        }
    }
}

impl Mobility for OrbitDrift {
    fn distance_at(&self, client: usize, placed: Meters, round: u64) -> Meters {
        let period = self.period_rounds.max(1) as f64;
        // Per-client phase offset spreads the fleet over the cycle.
        let phase = client as f64 * std::f64::consts::FRAC_PI_3;
        let theta = 2.0 * std::f64::consts::PI * round as f64 / period + phase;
        let scale = 1.0 + self.amplitude_frac * theta.sin();
        // Never collapse onto the AP (the path-loss model clamps at 1 m
        // anyway, but keep the geometry sane).
        Meters::new((placed.as_meters() * scale).max(1.0))
    }
}

/// Random-waypoint mobility with O(1) queries.
///
/// Time is divided into epochs of `epoch_rounds`; each client draws a
/// deterministic waypoint distance per epoch (uniform over the annulus
/// area in `[min_m, max_m]`) and moves linearly between consecutive
/// waypoints across the epoch. This is the classic random-waypoint model
/// collapsed onto the AP-distance axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    /// Closest approach to the AP.
    pub min_m: f64,
    /// Farthest excursion.
    pub max_m: f64,
    /// Rounds spent travelling between consecutive waypoints.
    pub epoch_rounds: u64,
    /// Seed for the waypoint draws.
    pub seed: u64,
}

impl Default for RandomWaypoint {
    fn default() -> Self {
        RandomWaypoint {
            min_m: 20.0,
            max_m: 200.0,
            epoch_rounds: 10,
            seed: 0,
        }
    }
}

impl RandomWaypoint {
    fn waypoint(&self, client: usize, epoch: u64) -> f64 {
        let mut rng = SeedDerive::new(self.seed)
            .child("waypoints")
            .index(client as u64)
            .index(epoch)
            .rng();
        let (r0, r1) = (self.min_m.max(1.0), self.max_m.max(self.min_m.max(1.0)));
        // Uniform over the annulus area, like Topology::random_annulus.
        let u: f64 = rng.gen();
        (u * (r1 * r1 - r0 * r0) + r0 * r0).sqrt()
    }
}

impl Mobility for RandomWaypoint {
    fn distance_at(&self, client: usize, _placed: Meters, round: u64) -> Meters {
        let epoch_len = self.epoch_rounds.max(1);
        let epoch = round / epoch_len;
        let frac = (round % epoch_len) as f64 / epoch_len as f64;
        let from = self.waypoint(client, epoch);
        let to = self.waypoint(client, epoch + 1);
        Meters::new(from + (to - from) * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_is_identity() {
        let m = Stationary;
        for r in [0u64, 5, 99] {
            assert_eq!(m.distance_at(3, Meters::new(80.0), r).as_meters(), 80.0);
        }
    }

    #[test]
    fn orbit_drift_is_periodic_and_bounded() {
        let m = OrbitDrift {
            amplitude_frac: 0.5,
            period_rounds: 10,
        };
        let placed = Meters::new(100.0);
        let d0 = m.distance_at(0, placed, 0).as_meters();
        let d10 = m.distance_at(0, placed, 10).as_meters();
        assert!((d0 - d10).abs() < 1e-9, "one full period returns home");
        for r in 0..10 {
            let d = m.distance_at(0, placed, r).as_meters();
            assert!((50.0..=150.0).contains(&d), "round {r}: {d}");
        }
        // Different rounds actually move the client.
        assert_ne!(
            m.distance_at(0, placed, 1).as_meters(),
            m.distance_at(0, placed, 3).as_meters()
        );
    }

    #[test]
    fn orbit_drift_declusters_clients() {
        let m = OrbitDrift::default();
        let placed = Meters::new(100.0);
        assert_ne!(
            m.distance_at(0, placed, 5).as_meters(),
            m.distance_at(1, placed, 5).as_meters()
        );
    }

    #[test]
    fn random_waypoint_deterministic_and_bounded() {
        let m = RandomWaypoint {
            min_m: 20.0,
            max_m: 200.0,
            epoch_rounds: 8,
            seed: 3,
        };
        for r in 0..40u64 {
            let a = m.distance_at(2, Meters::new(50.0), r).as_meters();
            let b = m.distance_at(2, Meters::new(50.0), r).as_meters();
            assert_eq!(a, b);
            assert!((20.0..=200.0).contains(&a), "round {r}: {a}");
        }
    }

    #[test]
    fn random_waypoint_moves_smoothly_within_epoch() {
        let m = RandomWaypoint {
            min_m: 10.0,
            max_m: 100.0,
            epoch_rounds: 10,
            seed: 1,
        };
        let placed = Meters::new(50.0);
        // Within one epoch the motion is linear: equal round increments
        // give equal distance increments.
        let d1 = m.distance_at(0, placed, 1).as_meters();
        let d2 = m.distance_at(0, placed, 2).as_meters();
        let d3 = m.distance_at(0, placed, 3).as_meters();
        assert!((d3 - d2 - (d2 - d1)).abs() < 1e-9);
    }
}
