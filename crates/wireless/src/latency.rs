//! The composed latency model.
//!
//! [`LatencyModel`] ties topology, link budgets, fading, device profiles
//! and the edge server into the quantities the training schemes charge
//! time for:
//!
//! * `uplink_time(client, bytes, round)` — client → AP transmission,
//! * `downlink_time(client, bytes, round)` — AP → client transmission,
//! * `client_compute(client, flops)` — on-device computation,
//! * `server_compute(flops)` — one server slot's computation.
//!
//! Fading is block-constant per round; bandwidth defaults to the full
//! channel (sequential protocols) and can be overridden per call with an
//! allocated share (concurrent protocols).

use crate::device::{DeviceHeterogeneity, DeviceProfile};
use crate::energy::PowerProfile;
use crate::fading::BlockFading;
use crate::link::LinkBudget;
use crate::server::EdgeServer;
use crate::topology::Topology;
use crate::units::{Bytes, Hertz, Meters, Seconds};
use crate::{Result, WirelessError};

/// Composed wireless + compute latency model for one experiment.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    topology: Topology,
    devices: Vec<DeviceProfile>,
    uplink: LinkBudget,
    downlink: LinkBudget,
    fading: BlockFading,
    total_bandwidth: Hertz,
    server: EdgeServer,
    power: PowerProfile,
}

/// Builder for [`LatencyModel`] (see [`LatencyModel::builder`]).
#[derive(Debug, Clone)]
pub struct LatencyModelBuilder {
    clients: usize,
    seed: u64,
    total_bandwidth: Hertz,
    uplink: LinkBudget,
    downlink: LinkBudget,
    heterogeneity: DeviceHeterogeneity,
    server: EdgeServer,
    fading_enabled: bool,
    min_radius: Meters,
    max_radius: Meters,
    fixed_distances: Option<Vec<Meters>>,
    fixed_devices: Option<Vec<DeviceProfile>>,
    power: PowerProfile,
}

impl LatencyModel {
    /// Starts a builder with paper-scale defaults: 5 MHz total bandwidth,
    /// urban path loss, Rayleigh block fading, heterogeneous 0.5–2 GFLOP/s
    /// devices in a 20–200 m annulus, and a 4-slot edge server.
    pub fn builder() -> LatencyModelBuilder {
        LatencyModelBuilder {
            clients: 1,
            seed: 0,
            total_bandwidth: Hertz::from_mhz(5.0),
            uplink: LinkBudget::uplink_default(),
            downlink: LinkBudget::downlink_default(),
            heterogeneity: DeviceHeterogeneity::default(),
            server: EdgeServer::edge_default(),
            fading_enabled: true,
            min_radius: Meters::new(20.0),
            max_radius: Meters::new(200.0),
            fixed_distances: None,
            fixed_devices: None,
            power: PowerProfile::default(),
        }
    }

    /// Number of clients.
    pub fn client_count(&self) -> usize {
        self.devices.len()
    }

    /// The total system bandwidth.
    pub fn total_bandwidth(&self) -> Hertz {
        self.total_bandwidth
    }

    /// The edge-server profile.
    pub fn server(&self) -> &EdgeServer {
        &self.server
    }

    /// The client power-draw profile used for energy accounting.
    pub fn power(&self) -> &PowerProfile {
        &self.power
    }

    /// The device profile of `client`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    pub fn device(&self, client: usize) -> Result<&DeviceProfile> {
        self.devices
            .get(client)
            .ok_or(WirelessError::UnknownClient {
                client,
                clients: self.devices.len(),
            })
    }

    /// The client's distance from the AP.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    pub fn distance(&self, client: usize) -> Result<Meters> {
        self.topology.distance(client)
    }

    /// Uplink transmission time using the **full** channel bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    pub fn uplink_time(&self, client: usize, payload: Bytes, round: u64) -> Result<Seconds> {
        self.uplink_time_with(client, payload, round, self.total_bandwidth)
    }

    /// Uplink transmission time over an allocated bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] / [`WirelessError::Config`]
    /// on bad indices or zero share.
    pub fn uplink_time_with(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let d = self.topology.distance(client)?;
        self.uplink_time_at(client, payload, round, share, d)
    }

    /// [`LatencyModel::uplink_time_with`] at an explicit distance —
    /// the seam mobility-driven environments use to override placement
    /// while keeping the link composition (fading stream, budget) in one
    /// place.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] on zero share.
    pub fn uplink_time_at(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        distance: Meters,
    ) -> Result<Seconds> {
        self.uplink_time_at_sinr(client, payload, round, share, distance, 0.0)
    }

    /// [`LatencyModel::uplink_time_at`] under `interference_mw` of
    /// aggregate co-channel interference power — the seam
    /// interference-aware environments use. Zero interference is
    /// bit-identical to the interference-free path.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] on zero share.
    pub fn uplink_time_at_sinr(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        distance: Meters,
        interference_mw: f64,
    ) -> Result<Seconds> {
        let gain = self.fading.power_gain(self.uplink_link_id(client), round);
        self.uplink
            .transmit_time_sinr(payload, distance, share, gain, interference_mw)
    }

    /// Received power (linear milliwatts) that `client`, transmitting on
    /// the uplink in `round` from `distance`, lands at a receiver —
    /// its co-channel interference contribution before reuse scaling.
    pub fn uplink_rx_power_mw(&self, client: usize, round: u64, distance: Meters) -> f64 {
        let gain = self.fading.power_gain(self.uplink_link_id(client), round);
        self.uplink.rx_power_mw(distance, gain)
    }

    /// The uplink link budget (shared by all clients).
    pub fn uplink_budget(&self) -> &LinkBudget {
        &self.uplink
    }

    /// Downlink transmission time using the full channel bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    pub fn downlink_time(&self, client: usize, payload: Bytes, round: u64) -> Result<Seconds> {
        self.downlink_time_with(client, payload, round, self.total_bandwidth)
    }

    /// Downlink transmission time over an allocated bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] / [`WirelessError::Config`]
    /// on bad indices or zero share.
    pub fn downlink_time_with(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let d = self.topology.distance(client)?;
        self.downlink_time_at(client, payload, round, share, d)
    }

    /// [`LatencyModel::downlink_time_with`] at an explicit distance
    /// (see [`LatencyModel::uplink_time_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] on zero share.
    pub fn downlink_time_at(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        distance: Meters,
    ) -> Result<Seconds> {
        self.downlink_time_at_sinr(client, payload, round, share, distance, 0.0)
    }

    /// [`LatencyModel::downlink_time_at`] under `interference_mw` of
    /// aggregate co-channel interference power heard at the client — the
    /// seam interference-aware environments use for concurrent AP
    /// downlinks. Zero interference is bit-identical to the
    /// interference-free path.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] on zero share.
    pub fn downlink_time_at_sinr(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        distance: Meters,
        interference_mw: f64,
    ) -> Result<Seconds> {
        let gain = self.fading.power_gain(self.downlink_link_id(client), round);
        self.downlink
            .transmit_time_sinr(payload, distance, share, gain, interference_mw)
    }

    /// The downlink link budget (shared by all clients).
    pub fn downlink_budget(&self) -> &LinkBudget {
        &self.downlink
    }

    /// Achievable uplink rate in bits/s over `share` bandwidth (used by
    /// channel-aware allocation).
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    pub fn uplink_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64> {
        let d = self.topology.distance(client)?;
        Ok(self.uplink_rate_bps_at(client, round, share, d))
    }

    /// [`LatencyModel::uplink_rate_bps`] at an explicit distance
    /// (see [`LatencyModel::uplink_time_at`]).
    pub fn uplink_rate_bps_at(
        &self,
        client: usize,
        round: u64,
        share: Hertz,
        distance: Meters,
    ) -> f64 {
        self.uplink_rate_bps_at_sinr(client, round, share, distance, 0.0)
    }

    /// [`LatencyModel::uplink_rate_bps_at`] under aggregate co-channel
    /// interference power.
    pub fn uplink_rate_bps_at_sinr(
        &self,
        client: usize,
        round: u64,
        share: Hertz,
        distance: Meters,
        interference_mw: f64,
    ) -> f64 {
        let gain = self.fading.power_gain(self.uplink_link_id(client), round);
        self.uplink
            .rate_bps_sinr(distance, share, gain, interference_mw)
    }

    /// On-device compute time for `client`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    pub fn client_compute(&self, client: usize, flops: u64) -> Result<Seconds> {
        Ok(self.device(client)?.compute_time(flops))
    }

    /// Compute time of one edge-server slot.
    pub fn server_compute(&self, flops: u64) -> Seconds {
        self.server.compute_time(flops)
    }

    /// The uplink fading power gain of `client` in `round`.
    pub fn uplink_gain(&self, client: usize, round: u64) -> f64 {
        self.fading.power_gain(self.uplink_link_id(client), round)
    }

    /// The downlink fading power gain of `client` in `round`.
    pub fn downlink_gain(&self, client: usize, round: u64) -> f64 {
        self.fading.power_gain(self.downlink_link_id(client), round)
    }

    // Distinct fading streams for the two directions of each client link.
    fn uplink_link_id(&self, client: usize) -> usize {
        client * 2
    }

    fn downlink_link_id(&self, client: usize) -> usize {
        client * 2 + 1
    }
}

impl LatencyModelBuilder {
    /// Sets the number of clients.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Sets the experiment seed (drives topology, devices, fading).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the total system bandwidth.
    pub fn bandwidth(mut self, bw: Hertz) -> Self {
        self.total_bandwidth = bw;
        self
    }

    /// Overrides the uplink budget.
    pub fn uplink(mut self, lb: LinkBudget) -> Self {
        self.uplink = lb;
        self
    }

    /// Overrides the downlink budget.
    pub fn downlink(mut self, lb: LinkBudget) -> Self {
        self.downlink = lb;
        self
    }

    /// Overrides the device heterogeneity range.
    pub fn heterogeneity(mut self, h: DeviceHeterogeneity) -> Self {
        self.heterogeneity = h;
        self
    }

    /// Overrides the edge server.
    pub fn server(mut self, server: EdgeServer) -> Self {
        self.server = server;
        self
    }

    /// Enables or disables Rayleigh block fading (disable for analytic
    /// cross-checks).
    pub fn fading(mut self, enabled: bool) -> Self {
        self.fading_enabled = enabled;
        self
    }

    /// Sets the client placement annulus.
    pub fn annulus(mut self, min: Meters, max: Meters) -> Self {
        self.min_radius = min;
        self.max_radius = max;
        self
    }

    /// Uses explicit distances instead of random placement (count must
    /// match `clients`).
    pub fn fixed_distances(mut self, distances: Vec<Meters>) -> Self {
        self.fixed_distances = Some(distances);
        self
    }

    /// Uses explicit device profiles instead of sampling (count must match
    /// `clients`).
    pub fn fixed_devices(mut self, devices: Vec<DeviceProfile>) -> Self {
        self.fixed_devices = Some(devices);
        self
    }

    /// Overrides the client power-draw profile.
    pub fn power(mut self, power: PowerProfile) -> Self {
        self.power = power;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for zero clients, invalid budgets,
    /// or mismatched fixed distances/devices.
    pub fn build(&self) -> Result<LatencyModel> {
        if self.clients == 0 {
            return Err(WirelessError::Config("need at least one client".into()));
        }
        self.uplink.validate()?;
        self.downlink.validate()?;
        if self.total_bandwidth.as_hz() <= 0.0 {
            return Err(WirelessError::Config("bandwidth must be > 0".into()));
        }
        let topology = match &self.fixed_distances {
            Some(d) => {
                if d.len() != self.clients {
                    return Err(WirelessError::Config(format!(
                        "{} fixed distances for {} clients",
                        d.len(),
                        self.clients
                    )));
                }
                Topology::fixed(d.clone())
            }
            None => {
                Topology::random_annulus(self.clients, self.min_radius, self.max_radius, self.seed)?
            }
        };
        let devices = match &self.fixed_devices {
            Some(d) => {
                if d.len() != self.clients {
                    return Err(WirelessError::Config(format!(
                        "{} fixed devices for {} clients",
                        d.len(),
                        self.clients
                    )));
                }
                d.clone()
            }
            None => self.heterogeneity.sample(self.clients, self.seed)?,
        };
        let fading = if self.fading_enabled {
            BlockFading::rayleigh(self.seed)
        } else {
            BlockFading::none()
        };
        Ok(LatencyModel {
            topology,
            devices,
            uplink: self.uplink,
            downlink: self.downlink,
            fading,
            total_bandwidth: self.total_bandwidth,
            server: self.server,
            power: self.power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::FlopsRate;

    fn model() -> LatencyModel {
        LatencyModel::builder().clients(4).seed(3).build().unwrap()
    }

    #[test]
    fn uplink_time_positive_and_deterministic() {
        let m = model();
        let t1 = m.uplink_time(0, Bytes::new(100_000), 2).unwrap();
        let t2 = m.uplink_time(0, Bytes::new(100_000), 2).unwrap();
        assert_eq!(t1, t2);
        assert!(t1.as_secs_f64() > 0.0);
    }

    #[test]
    fn fading_varies_per_round() {
        let m = model();
        let t1 = m.uplink_time(0, Bytes::new(100_000), 0).unwrap();
        let t2 = m.uplink_time(0, Bytes::new(100_000), 1).unwrap();
        assert_ne!(t1, t2);
    }

    #[test]
    fn no_fading_gives_round_invariant_times() {
        let m = LatencyModel::builder()
            .clients(2)
            .fading(false)
            .build()
            .unwrap();
        let t1 = m.uplink_time(0, Bytes::new(1000), 0).unwrap();
        let t2 = m.uplink_time(0, Bytes::new(1000), 99).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn smaller_share_is_slower() {
        let m = LatencyModel::builder()
            .clients(1)
            .fading(false)
            .build()
            .unwrap();
        let full = m
            .uplink_time_with(0, Bytes::new(1 << 20), 0, Hertz::from_mhz(5.0))
            .unwrap();
        let fifth = m
            .uplink_time_with(0, Bytes::new(1 << 20), 0, Hertz::from_mhz(1.0))
            .unwrap();
        assert!(fifth.as_secs_f64() > full.as_secs_f64());
    }

    #[test]
    fn downlink_faster_than_uplink_at_same_distance() {
        // 30 dBm AP vs 23 dBm handset.
        let m = LatencyModel::builder()
            .clients(1)
            .fading(false)
            .fixed_distances(vec![Meters::new(100.0)])
            .build()
            .unwrap();
        let up = m.uplink_time(0, Bytes::new(1 << 20), 0).unwrap();
        let down = m.downlink_time(0, Bytes::new(1 << 20), 0).unwrap();
        assert!(down.as_secs_f64() < up.as_secs_f64());
    }

    #[test]
    fn compute_times() {
        let m = LatencyModel::builder()
            .clients(1)
            .fixed_devices(vec![
                DeviceProfile::new(FlopsRate::from_gflops(1.0)).unwrap()
            ])
            .build()
            .unwrap();
        assert!((m.client_compute(0, 1_000_000_000).unwrap().as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(m.server_compute(1_000_000_000).as_secs_f64() < 1.0); // server faster
    }

    #[test]
    fn unknown_client_errors() {
        let m = model();
        assert!(m.uplink_time(9, Bytes::new(10), 0).is_err());
        assert!(m.client_compute(9, 10).is_err());
        assert!(m.device(9).is_err());
    }

    #[test]
    fn builder_validation() {
        assert!(LatencyModel::builder().clients(0).build().is_err());
        assert!(LatencyModel::builder()
            .clients(2)
            .fixed_distances(vec![Meters::new(5.0)])
            .build()
            .is_err());
        assert!(LatencyModel::builder()
            .clients(1)
            .bandwidth(Hertz::new(0.0))
            .build()
            .is_err());
    }
}
