//! Link budget: SNR/SINR and achievable rate.
//!
//! The interference-free quantities ([`LinkBudget::snr`],
//! [`LinkBudget::rate_bps`], [`LinkBudget::transmit_time`]) are thin
//! wrappers over the SINR forms at zero interference power — and the
//! zero-interference path is **bit-identical** to the historical SNR
//! formulas (`x / (1.0 + 0.0) == x` in IEEE 754), so environments that
//! never inject interference reproduce pre-SINR numbers byte for byte.

use crate::pathloss::PathLoss;
use crate::units::{Bytes, Dbm, Hertz, Meters, Seconds};
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// Static link-budget parameters shared by all links in one direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Transmit power.
    pub tx_power: Dbm,
    /// Noise power spectral density (dBm per Hz); thermal floor is
    /// −174 dBm/Hz.
    pub noise_dbm_per_hz: f64,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Large-scale path loss model.
    pub pathloss: PathLoss,
}

impl LinkBudget {
    /// Uplink defaults: 23 dBm handset, urban path loss, 7 dB noise figure.
    pub fn uplink_default() -> Self {
        LinkBudget {
            tx_power: Dbm::new(23.0),
            noise_dbm_per_hz: -174.0,
            noise_figure_db: 7.0,
            pathloss: PathLoss::urban_default(),
        }
    }

    /// Downlink defaults: 30 dBm AP, urban path loss, 7 dB noise figure.
    pub fn downlink_default() -> Self {
        LinkBudget {
            tx_power: Dbm::new(30.0),
            ..LinkBudget::uplink_default()
        }
    }

    /// Validates parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] on invalid path loss parameters.
    pub fn validate(&self) -> Result<()> {
        self.pathloss.validate()
    }

    /// Linear SNR at `distance` over `bandwidth` with an extra fading gain
    /// (`fading_power_gain` = |h|², 1.0 for no fading).
    pub fn snr(&self, distance: Meters, bandwidth: Hertz, fading_power_gain: f64) -> f64 {
        let rx_dbm = self
            .tx_power
            .minus_db(self.pathloss.loss_db(distance))
            .as_dbm()
            + 10.0 * fading_power_gain.max(f64::MIN_POSITIVE).log10();
        let noise_dbm = self.noise_dbm_per_hz
            + 10.0 * bandwidth.as_hz().max(1.0).log10()
            + self.noise_figure_db;
        10f64.powf((rx_dbm - noise_dbm) / 10.0)
    }

    /// Received signal power in linear milliwatts at `distance` with the
    /// given fading power gain — the quantity one transmitter contributes
    /// as co-channel interference at a receiver it is not addressing.
    pub fn rx_power_mw(&self, distance: Meters, fading_power_gain: f64) -> f64 {
        let rx_dbm = self
            .tx_power
            .minus_db(self.pathloss.loss_db(distance))
            .as_dbm()
            + 10.0 * fading_power_gain.max(f64::MIN_POSITIVE).log10();
        10f64.powf(rx_dbm / 10.0)
    }

    /// Thermal-plus-figure noise power in linear milliwatts over
    /// `bandwidth`.
    pub fn noise_power_mw(&self, bandwidth: Hertz) -> f64 {
        let noise_dbm = self.noise_dbm_per_hz
            + 10.0 * bandwidth.as_hz().max(1.0).log10()
            + self.noise_figure_db;
        10f64.powf(noise_dbm / 10.0)
    }

    /// Linear SINR: SNR degraded by `interference_mw` of co-channel
    /// interference power (milliwatts, already scaled by any reuse
    /// factor).
    ///
    /// Computed as `snr / (1 + I/N)` so `interference_mw == 0.0`
    /// reproduces [`LinkBudget::snr`] bit for bit.
    pub fn sinr(
        &self,
        distance: Meters,
        bandwidth: Hertz,
        fading_power_gain: f64,
        interference_mw: f64,
    ) -> f64 {
        self.snr(distance, bandwidth, fading_power_gain)
            / (1.0 + interference_mw / self.noise_power_mw(bandwidth))
    }

    /// Shannon-capacity achievable rate in bits/s.
    pub fn rate_bps(&self, distance: Meters, bandwidth: Hertz, fading_power_gain: f64) -> f64 {
        self.rate_bps_sinr(distance, bandwidth, fading_power_gain, 0.0)
    }

    /// Shannon-capacity achievable rate in bits/s under co-channel
    /// interference.
    pub fn rate_bps_sinr(
        &self,
        distance: Meters,
        bandwidth: Hertz,
        fading_power_gain: f64,
        interference_mw: f64,
    ) -> f64 {
        let sinr = self.sinr(distance, bandwidth, fading_power_gain, interference_mw);
        bandwidth.as_hz() * (1.0 + sinr).log2()
    }

    /// Time to transmit `payload` at the achievable rate.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] when the rate underflows to zero
    /// (zero bandwidth).
    pub fn transmit_time(
        &self,
        payload: Bytes,
        distance: Meters,
        bandwidth: Hertz,
        fading_power_gain: f64,
    ) -> Result<Seconds> {
        self.transmit_time_sinr(payload, distance, bandwidth, fading_power_gain, 0.0)
    }

    /// Time to transmit `payload` at the achievable rate under co-channel
    /// interference.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] when the rate underflows to zero
    /// (zero bandwidth).
    pub fn transmit_time_sinr(
        &self,
        payload: Bytes,
        distance: Meters,
        bandwidth: Hertz,
        fading_power_gain: f64,
        interference_mw: f64,
    ) -> Result<Seconds> {
        if payload == Bytes::ZERO {
            return Ok(Seconds::ZERO);
        }
        let rate = self.rate_bps_sinr(distance, bandwidth, fading_power_gain, interference_mw);
        if rate <= 0.0 {
            return Err(WirelessError::Config(format!(
                "link rate is zero (bandwidth {bandwidth}, distance {distance})"
            )));
        }
        Ok(Seconds::new(payload.as_bits() as f64 / rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snr_decreases_with_distance() {
        let lb = LinkBudget::uplink_default();
        let bw = Hertz::from_mhz(1.0);
        let near = lb.snr(Meters::new(20.0), bw, 1.0);
        let far = lb.snr(Meters::new(200.0), bw, 1.0);
        assert!(near > far);
        assert!(near > 0.0 && far > 0.0);
    }

    #[test]
    fn rate_increases_with_bandwidth_sublinearly_in_snr_region() {
        let lb = LinkBudget::uplink_default();
        let d = Meters::new(50.0);
        let r1 = lb.rate_bps(d, Hertz::from_mhz(1.0), 1.0);
        let r2 = lb.rate_bps(d, Hertz::from_mhz(2.0), 1.0);
        assert!(r2 > r1);
        // Doubling bandwidth less than doubles SNR-limited rate... but can
        // exceed 2× only if SNR grows, which it does not. So r2 < 2·r1.
        assert!(r2 < 2.0 * r1 + 1.0);
    }

    #[test]
    fn fading_gain_monotone_in_rate() {
        let lb = LinkBudget::uplink_default();
        let d = Meters::new(80.0);
        let bw = Hertz::from_mhz(1.0);
        assert!(lb.rate_bps(d, bw, 2.0) > lb.rate_bps(d, bw, 0.5));
    }

    #[test]
    fn transmit_time_scales_with_payload() {
        let lb = LinkBudget::uplink_default();
        let d = Meters::new(50.0);
        let bw = Hertz::from_mhz(1.0);
        let t1 = lb
            .transmit_time(Bytes::new(1000), d, bw, 1.0)
            .unwrap()
            .as_secs_f64();
        let t2 = lb
            .transmit_time(Bytes::new(2000), d, bw, 1.0)
            .unwrap()
            .as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert_eq!(
            lb.transmit_time(Bytes::ZERO, d, bw, 1.0).unwrap(),
            Seconds::ZERO
        );
    }

    #[test]
    fn realistic_rate_magnitude() {
        // 5 MHz at 50 m with a 23 dBm handset should land in the
        // tens-of-Mbps range — sanity against the Shannon formula.
        let lb = LinkBudget::uplink_default();
        let rate = lb.rate_bps(Meters::new(50.0), Hertz::from_mhz(5.0), 1.0);
        assert!(rate > 5e6, "rate {rate}");
        assert!(rate < 500e6, "rate {rate}");
    }

    #[test]
    fn zero_interference_sinr_is_bitwise_snr() {
        let lb = LinkBudget::uplink_default();
        let bw = Hertz::from_mhz(2.0);
        for d in [5.0f64, 50.0, 180.0] {
            for g in [0.3f64, 1.0, 2.5] {
                let d = Meters::new(d);
                assert_eq!(lb.sinr(d, bw, g, 0.0), lb.snr(d, bw, g));
                assert_eq!(lb.rate_bps_sinr(d, bw, g, 0.0), lb.rate_bps(d, bw, g));
            }
        }
    }

    #[test]
    fn interference_strictly_degrades_rate() {
        let lb = LinkBudget::uplink_default();
        let d = Meters::new(60.0);
        let bw = Hertz::from_mhz(1.0);
        // One 23 dBm interferer at 100 m.
        let i_mw = lb.rx_power_mw(Meters::new(100.0), 1.0);
        let clean = lb.rate_bps(d, bw, 1.0);
        let dirty = lb.rate_bps_sinr(d, bw, 1.0, i_mw);
        assert!(dirty < clean, "{dirty} !< {clean}");
        // More interference is never faster.
        let dirtier = lb.rate_bps_sinr(d, bw, 1.0, 2.0 * i_mw);
        assert!(dirtier < dirty);
    }

    #[test]
    fn rx_power_consistent_with_snr() {
        // SNR == rx_power / noise_power, by definition.
        let lb = LinkBudget::uplink_default();
        let d = Meters::new(75.0);
        let bw = Hertz::from_mhz(3.0);
        let ratio = lb.rx_power_mw(d, 1.3) / lb.noise_power_mw(bw);
        let snr = lb.snr(d, bw, 1.3);
        assert!((ratio / snr - 1.0).abs() < 1e-9, "{ratio} vs {snr}");
    }

    #[test]
    fn zero_bandwidth_rejected() {
        let lb = LinkBudget::uplink_default();
        assert!(lb
            .transmit_time(Bytes::new(10), Meters::new(10.0), Hertz::new(0.0), 1.0)
            .is_err());
    }
}
