//! Device energy accounting.
//!
//! Resource-limited clients are usually battery-limited too, so the
//! harness tracks per-round energy next to latency. The model is the
//! standard linear one: radiated transmit power plus constant circuit
//! power while transmitting, constant receive power while listening, and
//! a constant compute power while training.

use crate::units::Seconds;
use serde::{Deserialize, Serialize};

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Creates an energy amount.
    pub fn new(j: f64) -> Self {
        Joules(j)
    }

    /// The value in joules.
    pub fn as_joules(&self) -> f64 {
        self.0
    }
}

impl std::ops::Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, std::ops::Add::add)
    }
}

impl std::fmt::Display for Joules {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.2}kJ", self.0 / 1000.0)
        } else {
            write!(f, "{:.2}J", self.0)
        }
    }
}

/// Power draw profile of a client device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Power while transmitting (PA + circuits), watts.
    pub tx_watts: f64,
    /// Power while receiving, watts.
    pub rx_watts: f64,
    /// Power while computing (CPU under training load), watts.
    pub compute_watts: f64,
    /// Idle floor, watts (charged on the full round duration if desired).
    pub idle_watts: f64,
}

impl Default for PowerProfile {
    fn default() -> Self {
        // Smartphone-class figures: ~1 W radio TX (23 dBm PA + circuits),
        // ~0.8 W RX, ~2 W sustained CPU training load, ~0.1 W idle.
        PowerProfile {
            tx_watts: 1.0,
            rx_watts: 0.8,
            compute_watts: 2.0,
            idle_watts: 0.1,
        }
    }
}

impl PowerProfile {
    /// Energy for a transmission of the given duration.
    pub fn tx_energy(&self, t: Seconds) -> Joules {
        Joules::new(self.tx_watts * t.as_secs_f64())
    }

    /// Energy for a reception of the given duration.
    pub fn rx_energy(&self, t: Seconds) -> Joules {
        Joules::new(self.rx_watts * t.as_secs_f64())
    }

    /// Energy for on-device computation of the given duration.
    pub fn compute_energy(&self, t: Seconds) -> Joules {
        Joules::new(self.compute_watts * t.as_secs_f64())
    }

    /// Idle energy over the given duration.
    pub fn idle_energy(&self, t: Seconds) -> Joules {
        Joules::new(self.idle_watts * t.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let p = PowerProfile::default();
        let t = Seconds::new(2.0);
        assert!((p.tx_energy(t).as_joules() - 2.0).abs() < 1e-9);
        assert!((p.rx_energy(t).as_joules() - 1.6).abs() < 1e-9);
        assert!((p.compute_energy(t).as_joules() - 4.0).abs() < 1e-9);
        assert!((p.idle_energy(t).as_joules() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn joules_arithmetic_and_display() {
        let total: Joules = [Joules::new(1.5), Joules::new(2.5)].into_iter().sum();
        assert_eq!(total.as_joules(), 4.0);
        assert_eq!(Joules::new(0.5).to_string(), "0.50J");
        assert_eq!(Joules::new(2500.0).to_string(), "2.50kJ");
        let mut j = Joules::ZERO;
        j += Joules::new(1.0);
        assert_eq!(j.as_joules(), 1.0);
    }
}
