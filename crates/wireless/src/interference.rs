//! Co-channel interference between concurrent transmitters.
//!
//! The paper's latency model gives every client an interference-free
//! link; real contested spectrum does not. [`InterferenceSpec`] names the
//! single knob of the standard co-channel model: a **reuse/orthogonality
//! factor** η ∈ [0, 1] — the fraction of each concurrent transmitter's
//! received power that lands in-band at a victim receiver. η = 0 is
//! perfectly orthogonal access (OFDMA with ideal filtering — the
//! historical behavior, bit for bit); η = 1 is full-band non-orthogonal
//! reuse where every concurrent uplink is raw interference.
//!
//! Environments that carry a spec answer the
//! [`crate::environment::ChannelModel::uplink_time_among`] query by
//! summing the interferers' received powers (through the same path-loss
//! and fading pipeline as the signal), scaling by η, and feeding the
//! aggregate into [`crate::link::LinkBudget::sinr`].

use crate::link::LinkBudget;
use crate::units::Meters;
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// Co-channel interference parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSpec {
    /// Reuse/orthogonality factor η ∈ [0, 1]: the fraction of each
    /// concurrent transmitter's received power that appears as in-band
    /// interference. 0 = perfectly orthogonal (no interference).
    pub reuse_factor: f64,
}

impl Default for InterferenceSpec {
    fn default() -> Self {
        // Imperfect orthogonality: half of each concurrent transmitter's
        // power leaks in-band — enough to make concurrency visibly pay.
        InterferenceSpec { reuse_factor: 0.5 }
    }
}

impl InterferenceSpec {
    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] when `reuse_factor` is outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.reuse_factor) || self.reuse_factor.is_nan() {
            return Err(WirelessError::Config(format!(
                "interference reuse_factor must be in [0,1], got {}",
                self.reuse_factor
            )));
        }
        Ok(())
    }

    /// Whether the spec actually injects interference.
    pub fn is_active(&self) -> bool {
        self.reuse_factor > 0.0
    }
}

/// Aggregate in-band interference power (linear milliwatts) at a receiver
/// from `sources`, each given as `(distance, fading_power_gain)` of a
/// concurrent transmitter using `budget`'s transmit power and path loss,
/// scaled by the spec's reuse factor.
pub fn co_channel_interference_mw(
    budget: &LinkBudget,
    sources: &[(Meters, f64)],
    spec: InterferenceSpec,
) -> f64 {
    if !spec.is_active() || sources.is_empty() {
        return 0.0;
    }
    sources
        .iter()
        .map(|&(d, g)| budget.rx_power_mw(d, g))
        .sum::<f64>()
        * spec.reuse_factor
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds_reuse() {
        assert!(InterferenceSpec { reuse_factor: 0.0 }.validate().is_ok());
        assert!(InterferenceSpec { reuse_factor: 1.0 }.validate().is_ok());
        assert!(InterferenceSpec { reuse_factor: -0.1 }.validate().is_err());
        assert!(InterferenceSpec { reuse_factor: 1.5 }.validate().is_err());
        assert!(InterferenceSpec {
            reuse_factor: f64::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn aggregate_is_additive_and_scaled() {
        let lb = LinkBudget::uplink_default();
        let spec = InterferenceSpec { reuse_factor: 0.5 };
        let one = co_channel_interference_mw(&lb, &[(Meters::new(80.0), 1.0)], spec);
        let two = co_channel_interference_mw(
            &lb,
            &[(Meters::new(80.0), 1.0), (Meters::new(80.0), 1.0)],
            spec,
        );
        assert!(one > 0.0);
        assert!((two / one - 2.0).abs() < 1e-12);
        assert_eq!(
            co_channel_interference_mw(&lb, &[], spec),
            0.0,
            "no sources, no interference"
        );
        let orthogonal = InterferenceSpec { reuse_factor: 0.0 };
        assert_eq!(
            co_channel_interference_mw(&lb, &[(Meters::new(80.0), 1.0)], orthogonal),
            0.0
        );
    }

    #[test]
    fn default_is_active_and_valid() {
        let spec = InterferenceSpec::default();
        assert!(spec.validate().is_ok());
        assert!(spec.is_active());
    }
}
