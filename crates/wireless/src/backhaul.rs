//! AP→aggregator backhaul links for hierarchical (two-tier) aggregation.
//!
//! The access-network models in this crate price the client↔AP hop; a
//! [`BackhaulLink`] prices the second tier — the wired (or microwave)
//! hop from an AP's edge server up to the aggregation point that merges
//! per-AP partial aggregates. Environments expose their backhaul through
//! [`crate::environment::ChannelModel::backhaul`]; the default is `None`
//! (an infinitely fast backhaul), which keeps every pre-existing
//! single-tier environment byte-identical.

use crate::units::{Bytes, Seconds};
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// A point-to-point backhaul link between one AP's edge server and the
/// aggregation tier above it.
///
/// The transfer model is the classic fixed-latency pipe:
/// `time = latency_s + bits / capacity_bps`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackhaulLink {
    /// Link capacity, bits per second.
    pub capacity_bps: f64,
    /// Fixed per-transfer latency (propagation + switching), seconds.
    pub latency_s: f64,
}

impl Default for BackhaulLink {
    /// A metro-Ethernet-class default: 1 Gbit/s with 2 ms of fixed
    /// latency.
    fn default() -> Self {
        BackhaulLink {
            capacity_bps: 1e9,
            latency_s: 2e-3,
        }
    }
}

impl BackhaulLink {
    /// A validated link.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for a non-positive or non-finite
    /// capacity, or a negative/non-finite latency.
    pub fn new(capacity_bps: f64, latency_s: f64) -> Result<Self> {
        let link = BackhaulLink {
            capacity_bps,
            latency_s,
        };
        link.validate()?;
        Ok(link)
    }

    /// Checks the link parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for a non-positive or non-finite
    /// capacity, or a negative/non-finite latency.
    pub fn validate(&self) -> Result<()> {
        if !self.capacity_bps.is_finite() || self.capacity_bps <= 0.0 {
            return Err(WirelessError::Config(format!(
                "backhaul capacity must be finite and > 0 bps, got {}",
                self.capacity_bps
            )));
        }
        if !self.latency_s.is_finite() || self.latency_s < 0.0 {
            return Err(WirelessError::Config(format!(
                "backhaul latency must be finite and ≥ 0 s, got {}",
                self.latency_s
            )));
        }
        Ok(())
    }

    /// Time to push `payload` across this link.
    pub fn transfer_time(&self, payload: Bytes) -> Seconds {
        Seconds::new(self.latency_s + payload.as_bits() as f64 / self.capacity_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let link = BackhaulLink::new(1e6, 0.5).unwrap();
        // 125_000 bytes = 1e6 bits = 1 second of serialization.
        let t = link.transfer_time(Bytes::new(125_000));
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        // An empty payload still pays the fixed latency.
        let t0 = link.transfer_time(Bytes::ZERO);
        assert!((t0.as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_valid_and_fast() {
        let link = BackhaulLink::default();
        link.validate().unwrap();
        assert!(link.transfer_time(Bytes::new(1 << 20)).as_secs_f64() < 0.05);
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(BackhaulLink::new(0.0, 0.0).is_err());
        assert!(BackhaulLink::new(-1.0, 0.0).is_err());
        assert!(BackhaulLink::new(f64::NAN, 0.0).is_err());
        assert!(BackhaulLink::new(1e9, -0.1).is_err());
        assert!(BackhaulLink::new(1e9, f64::INFINITY).is_err());
    }
}
