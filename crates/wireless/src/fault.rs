//! Seeded, thread-invariant fault injection and retry pricing.
//!
//! Real resource-limited wireless networks lose transfers, crash devices
//! mid-epoch and take APs offline; the paper's latency model assumes
//! every scheduled hop completes. This module is the one seeded failure
//! source for all of it:
//!
//! * **Transfer loss** — every wire transfer independently loses each
//!   attempt with probability [`FaultSpec::loss_prob`]; the
//!   [`RetryPolicy`] retries with exponential backoff (deterministic
//!   jitter) up to `max_attempts`, and the resulting
//!   [`TransferOutcome`] is what the latency calculators price: a lost
//!   attempt charges its full airtime plus the backoff before the retry.
//! * **Mid-compute crashes** — with probability [`FaultSpec::crash_prob`]
//!   a client dies at a sampled progress fraction of its round
//!   ([`FaultInjector::crash_point`]) and contributes nothing.
//! * **AP outages** — APs go dark for contiguous round windows
//!   ([`ApOutageSpec`]); clients associated with an offline AP are
//!   unreachable that round.
//! * **Round-start dropouts** — the historical `DropoutInjector`
//!   behavior, folded in as [`FaultSpec::dropout_prob`] on the *exact*
//!   same derived RNG stream, so existing `dropouts` presets stay
//!   bitwise identical.
//!
//! Every draw is a pure function of (environment seed, client, round,
//! transfer index) through [`SeedDerive`] — never of host thread count
//! or wall-clock — so fault realizations are reproducible and identical
//! at any parallelism. [`FaultSpec::default`] is the no-fault identity:
//! environments without faults answer every query with the clean
//! outcome and stay byte-identical to the pre-fault code path.

use crate::units::Seconds;
use crate::{Result, WirelessError};
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Retransmission policy for lost transfers: up to `max_attempts` tries,
/// exponential backoff between them with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum transmission attempts per transfer (≥ 1). The last
    /// attempt always goes through — the cap bounds how much airtime a
    /// lossy link can burn, it does not abandon the payload.
    pub max_attempts: u32,
    /// Base backoff before the second attempt, seconds; attempt `k`
    /// waits `backoff_base_s · 2^(k-2)` (scaled by jitter) after the
    /// `k-1`-th loss.
    pub backoff_base_s: f64,
    /// Jitter amplitude in `[0, 1]`: each backoff is scaled by a
    /// deterministic uniform draw from `[1, 1 + backoff_jitter]`.
    pub backoff_jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 0.05,
            backoff_jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff charged after the `failed`-th consecutive loss
    /// (`failed ≥ 1`), with `u ∈ [0, 1)` the jitter draw.
    pub fn backoff_after(&self, failed: u32, u: f64) -> f64 {
        let exp = 2f64.powi(failed.saturating_sub(1).min(30) as i32);
        self.backoff_base_s * exp * (1.0 + self.backoff_jitter * u)
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for a zero attempt budget,
    /// negative/non-finite backoff, or jitter outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(WirelessError::Config(
                "retry max_attempts must be ≥ 1".into(),
            ));
        }
        if !self.backoff_base_s.is_finite() || self.backoff_base_s < 0.0 {
            return Err(WirelessError::Config(format!(
                "retry backoff_base_s must be finite and ≥ 0, got {}",
                self.backoff_base_s
            )));
        }
        if !(0.0..=1.0).contains(&self.backoff_jitter) {
            return Err(WirelessError::Config(format!(
                "retry backoff_jitter must be in [0,1], got {}",
                self.backoff_jitter
            )));
        }
        Ok(())
    }
}

/// Per-AP outage windows: with probability `probability` a window opens
/// at a round and keeps the AP offline for `duration_rounds` rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApOutageSpec {
    /// Per-AP-round probability that an outage window *starts*.
    pub probability: f64,
    /// How many consecutive rounds an opened window lasts (≥ 1).
    pub duration_rounds: u64,
}

impl Default for ApOutageSpec {
    fn default() -> Self {
        ApOutageSpec {
            probability: 0.02,
            duration_rounds: 2,
        }
    }
}

/// The full fault model of an environment. The default is the no-fault
/// identity: every probability zero, no outages, the default retry
/// policy (which never fires without losses).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-attempt transfer loss probability, in `[0, 1)`.
    #[serde(default)]
    pub loss_prob: f64,
    /// Per-client-round mid-compute crash probability, in `[0, 1]`.
    #[serde(default)]
    pub crash_prob: f64,
    /// Per-client-round round-start dropout probability, in `[0, 1]`
    /// (the unified `DropoutInjector` channel — same RNG stream).
    #[serde(default)]
    pub dropout_prob: f64,
    /// Optional per-AP outage windows.
    #[serde(default)]
    pub ap_outage: Option<ApOutageSpec>,
    /// Retransmission pricing for lost transfers.
    #[serde(default)]
    pub retry: RetryPolicy,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            loss_prob: 0.0,
            crash_prob: 0.0,
            dropout_prob: 0.0,
            ap_outage: None,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultSpec {
    /// Whether this spec can never produce a fault (the identity path).
    pub fn is_noop(&self) -> bool {
        self.loss_prob <= 0.0
            && self.crash_prob <= 0.0
            && self.dropout_prob <= 0.0
            && self.ap_outage.is_none_or(|o| o.probability <= 0.0)
    }

    /// Validates all probabilities and the retry policy.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] naming the first bad field.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("loss_prob", self.loss_prob),
            ("crash_prob", self.crash_prob),
            ("dropout_prob", self.dropout_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(WirelessError::Config(format!(
                    "fault {name} must be in [0,1], got {p}"
                )));
            }
        }
        if self.loss_prob >= 1.0 {
            return Err(WirelessError::Config(
                "fault loss_prob must be < 1 (a certain loss never delivers)".into(),
            ));
        }
        if let Some(o) = self.ap_outage {
            if !(0.0..=1.0).contains(&o.probability) {
                return Err(WirelessError::Config(format!(
                    "ap_outage probability must be in [0,1], got {}",
                    o.probability
                )));
            }
            if o.duration_rounds == 0 {
                return Err(WirelessError::Config(
                    "ap_outage duration_rounds must be ≥ 1".into(),
                ));
            }
        }
        self.retry.validate()
    }
}

/// The realized fate of one wire transfer: how many attempts it took and
/// how much backoff accrued before the successful one. The clean outcome
/// (`attempts == 1`, zero backoff) prices exactly like the pre-fault
/// path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Total transmission attempts, ≥ 1; the last one delivers.
    pub attempts: u32,
    /// Backoff time accrued between attempts, seconds.
    pub backoff_s: f64,
}

impl TransferOutcome {
    /// The no-fault outcome: delivered on the first attempt.
    pub fn clean() -> Self {
        TransferOutcome {
            attempts: 1,
            backoff_s: 0.0,
        }
    }

    /// Retransmissions beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts - 1
    }

    /// Total wire time of the transfer: every attempt's airtime plus the
    /// accumulated backoff. Identity (`airtime` unchanged, bit for bit)
    /// for the clean outcome.
    pub fn total_time(&self, airtime: Seconds) -> Seconds {
        if self.attempts == 1 {
            return airtime;
        }
        Seconds::new(airtime.as_secs_f64() * self.attempts as f64 + self.backoff_s)
    }
}

/// Seeded fault injector: the single source of every failure draw in an
/// environment. Construct through a [`FaultSpec`] and the environment's
/// [`SeedDerive`] root (so the dropout channel reproduces the historical
/// `DropoutInjector` stream exactly).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    spec: FaultSpec,
    seeds: SeedDerive,
}

impl FaultInjector {
    /// Builds an injector over a validated spec.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultSpec::validate`] errors.
    pub fn new(spec: FaultSpec, seeds: SeedDerive) -> Result<Self> {
        spec.validate()?;
        Ok(FaultInjector { spec, seeds })
    }

    /// The spec this injector realizes.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Round-start dropout: whether `client`'s radio is unreachable in
    /// `round`. Bitwise identical to the historical
    /// `DropoutInjector::dropped` stream (`child("dropouts")`).
    pub fn dropped(&self, client: usize, round: u64) -> bool {
        if self.spec.dropout_prob <= 0.0 {
            return false;
        }
        let mut rng = self
            .seeds
            .child("dropouts")
            .index(client as u64)
            .index(round)
            .rng();
        rng.gen::<f64>() < self.spec.dropout_prob
    }

    /// The fate of transfer number `transfer` of `client` in `round`:
    /// attempts are drawn independently per attempt, capped at the retry
    /// policy's `max_attempts` (the last attempt always delivers), with
    /// exponential jittered backoff accrued between attempts.
    ///
    /// The outcome is pointwise monotone in `loss_prob`: raising the
    /// loss probability can only turn a success draw into a loss, never
    /// the reverse, so attempts (and priced time) never decrease.
    pub fn transfer_outcome(&self, client: usize, round: u64, transfer: u64) -> TransferOutcome {
        if self.spec.loss_prob <= 0.0 {
            return TransferOutcome::clean();
        }
        let mut rng = self
            .seeds
            .child("fault-loss")
            .index(client as u64)
            .index(round)
            .index(transfer)
            .rng();
        let mut attempts = 1u32;
        let mut backoff_s = 0.0f64;
        while attempts < self.spec.retry.max_attempts && rng.gen::<f64>() < self.spec.loss_prob {
            backoff_s += self.spec.retry.backoff_after(attempts, rng.gen::<f64>());
            attempts += 1;
        }
        TransferOutcome {
            attempts,
            backoff_s,
        }
    }

    /// Mid-compute crash: `Some(progress)` when `client` dies in `round`
    /// after completing `progress ∈ [0, 1)` of its local work, `None`
    /// when it survives.
    pub fn crash_point(&self, client: usize, round: u64) -> Option<f64> {
        if self.spec.crash_prob <= 0.0 {
            return None;
        }
        let mut rng = self
            .seeds
            .child("fault-crash")
            .index(client as u64)
            .index(round)
            .rng();
        if rng.gen::<f64>() < self.spec.crash_prob {
            Some(rng.gen::<f64>())
        } else {
            None
        }
    }

    /// Whether AP `ap` is online in `round`: offline iff any outage
    /// window opened within the last `duration_rounds` rounds.
    pub fn ap_online(&self, ap: usize, round: u64) -> bool {
        let Some(o) = self.spec.ap_outage else {
            return true;
        };
        if o.probability <= 0.0 {
            return true;
        }
        let first = round.saturating_sub(o.duration_rounds - 1);
        for start in first..=round {
            let mut rng = self
                .seeds
                .child("fault-ap")
                .index(ap as u64)
                .index(start)
                .rng();
            if rng.gen::<f64>() < o.probability {
                return false;
            }
        }
        true
    }

    /// Whether `client`, associated with AP `ap`, is reachable at round
    /// start: neither dropped out nor behind an offline AP.
    pub fn client_available(&self, client: usize, ap: usize, round: u64) -> bool {
        !self.dropped(client, round) && self.ap_online(ap, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(spec: FaultSpec) -> FaultInjector {
        FaultInjector::new(spec, SeedDerive::new(7).child("environment")).unwrap()
    }

    #[test]
    fn default_spec_is_the_identity() {
        let f = injector(FaultSpec::default());
        assert!(f.spec().is_noop());
        for round in 0..20u64 {
            for c in 0..4 {
                assert!(!f.dropped(c, round));
                assert_eq!(f.transfer_outcome(c, round, 3), TransferOutcome::clean());
                assert_eq!(f.crash_point(c, round), None);
                assert!(f.ap_online(0, round));
                assert!(f.client_available(c, 0, round));
            }
        }
        let t = Seconds::new(1.25);
        assert_eq!(TransferOutcome::clean().total_time(t), t);
    }

    #[test]
    fn dropout_stream_matches_historical_injector() {
        // The unified dropout channel must replay the exact
        // `child("dropouts").index(client).index(round)` stream the old
        // DropoutInjector used.
        let seeds = SeedDerive::new(11).child("environment");
        let f = FaultInjector::new(
            FaultSpec {
                dropout_prob: 0.4,
                ..FaultSpec::default()
            },
            seeds,
        )
        .unwrap();
        for round in 0..40u64 {
            for c in 0..5usize {
                let mut rng = seeds.child("dropouts").index(c as u64).index(round).rng();
                let legacy = rng.gen::<f64>() < 0.4;
                assert_eq!(f.dropped(c, round), legacy, "client {c} round {round}");
            }
        }
    }

    #[test]
    fn transfer_outcomes_are_deterministic_and_capped() {
        let f = injector(FaultSpec {
            loss_prob: 0.9,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_s: 0.1,
                backoff_jitter: 0.0,
            },
            ..FaultSpec::default()
        });
        let mut saw_retry = false;
        for xfer in 0..50u64 {
            let o = f.transfer_outcome(0, 1, xfer);
            assert_eq!(o, f.transfer_outcome(0, 1, xfer), "deterministic");
            assert!(o.attempts >= 1 && o.attempts <= 3);
            saw_retry |= o.attempts > 1;
            // Jitter 0: backoff is exactly the geometric sum.
            let want: f64 = (1..o.attempts).map(|k| 0.1 * 2f64.powi(k as i32 - 1)).sum();
            assert!((o.backoff_s - want).abs() < 1e-12);
        }
        assert!(saw_retry, "p=0.9 over 50 transfers must retry");
    }

    #[test]
    fn outcomes_are_monotone_in_loss_probability() {
        let lo = injector(FaultSpec {
            loss_prob: 0.2,
            ..FaultSpec::default()
        });
        let hi = injector(FaultSpec {
            loss_prob: 0.7,
            ..FaultSpec::default()
        });
        let airtime = Seconds::new(0.5);
        for xfer in 0..200u64 {
            let a = lo.transfer_outcome(3, 9, xfer);
            let b = hi.transfer_outcome(3, 9, xfer);
            assert!(b.attempts >= a.attempts, "attempts monotone");
            assert!(
                b.total_time(airtime).as_secs_f64() >= a.total_time(airtime).as_secs_f64(),
                "priced time monotone"
            );
        }
    }

    #[test]
    fn crashes_sample_a_progress_fraction() {
        let f = injector(FaultSpec {
            crash_prob: 0.5,
            ..FaultSpec::default()
        });
        let mut crashed = 0;
        for round in 0..60u64 {
            for c in 0..4 {
                match f.crash_point(c, round) {
                    Some(p) => {
                        assert!((0.0..1.0).contains(&p));
                        assert_eq!(f.crash_point(c, round), Some(p), "deterministic");
                        crashed += 1;
                    }
                    None => assert_eq!(f.crash_point(c, round), None),
                }
            }
        }
        assert!(crashed > 0, "p=0.5 over 240 samples must crash");
    }

    #[test]
    fn ap_outages_last_their_window() {
        let f = injector(FaultSpec {
            ap_outage: Some(ApOutageSpec {
                probability: 0.15,
                duration_rounds: 3,
            }),
            ..FaultSpec::default()
        });
        // Find a window start, then the AP must stay dark for the
        // window's full duration.
        let mut saw_outage = false;
        for round in 0..200u64 {
            if !f.ap_online(0, round) {
                saw_outage = true;
                // Some start within the last 3 rounds keeps the next
                // rounds of its window dark too; just check determinism.
                assert!(!f.ap_online(0, round));
            }
        }
        assert!(saw_outage, "p=0.15 over 200 rounds must go dark");
        // Different APs draw independent windows.
        let a: Vec<bool> = (0..100).map(|r| f.ap_online(0, r)).collect();
        let b: Vec<bool> = (0..100).map(|r| f.ap_online(1, r)).collect();
        assert_ne!(a, b, "independent per-AP outage streams");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(FaultSpec {
            loss_prob: 1.0,
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        assert!(FaultSpec {
            crash_prob: -0.1,
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        assert!(FaultSpec {
            dropout_prob: 1.5,
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        assert!(FaultSpec {
            ap_outage: Some(ApOutageSpec {
                probability: 0.1,
                duration_rounds: 0,
            }),
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        assert!(FaultSpec {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        assert!(FaultSpec {
            retry: RetryPolicy {
                backoff_jitter: 2.0,
                ..RetryPolicy::default()
            },
            ..FaultSpec::default()
        }
        .validate()
        .is_err());
        assert!(FaultSpec::default().validate().is_ok());
    }

    #[test]
    fn spec_serde_round_trips_with_defaults() {
        let spec = FaultSpec {
            loss_prob: 0.1,
            crash_prob: 0.05,
            dropout_prob: 0.1,
            ap_outage: Some(ApOutageSpec::default()),
            retry: RetryPolicy::default(),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Sparse configs load with identity defaults.
        let sparse: FaultSpec = serde_json::from_str(r#"{"loss_prob":0.2}"#).unwrap();
        assert_eq!(sparse.loss_prob, 0.2);
        assert_eq!(sparse.crash_prob, 0.0);
        assert_eq!(sparse.retry, RetryPolicy::default());
    }
}
