//! Path-loss models.

use crate::units::Meters;
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// Large-scale path loss as a function of distance, as a trait.
///
/// The built-in [`PathLoss`] enum implements this. Nothing in the crate
/// consumes the trait object yet — it names the seam a future
/// interference / multi-AP environment (see ROADMAP) will accept custom
/// propagation models through (ray-traced maps, measured traces).
pub trait PathLossModel: std::fmt::Debug + Send + Sync {
    /// The loss in dB at `distance`.
    fn loss_db(&self, distance: Meters) -> f64;
}

impl PathLossModel for PathLoss {
    fn loss_db(&self, distance: Meters) -> f64 {
        PathLoss::loss_db(self, distance)
    }
}

/// Large-scale path loss as a function of distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// Free-space path loss at carrier frequency `carrier_ghz`.
    FreeSpace {
        /// Carrier frequency in GHz.
        carrier_ghz: f64,
    },
    /// Log-distance model: `PL(d) = ref_loss_db + 10·n·log10(d/d0)`.
    LogDistance {
        /// Path-loss exponent `n` (≈2 free space, 3–4 urban).
        exponent: f64,
        /// Loss at the reference distance, in dB.
        ref_loss_db: f64,
        /// Reference distance `d0` in meters.
        ref_distance_m: f64,
    },
}

impl PathLoss {
    /// A sensible urban-microcell default (3.5 GHz, exponent 3.0).
    pub fn urban_default() -> Self {
        PathLoss::LogDistance {
            exponent: 3.0,
            ref_loss_db: 43.3, // FSPL at 1 m, 3.5 GHz
            ref_distance_m: 1.0,
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for non-positive frequencies,
    /// exponents or reference distances.
    pub fn validate(&self) -> Result<()> {
        match *self {
            PathLoss::FreeSpace { carrier_ghz } if carrier_ghz <= 0.0 => Err(
                WirelessError::Config(format!("carrier must be > 0, got {carrier_ghz}")),
            ),
            PathLoss::LogDistance {
                exponent,
                ref_distance_m,
                ..
            } if exponent <= 0.0 || ref_distance_m <= 0.0 => Err(WirelessError::Config(
                "log-distance exponent and reference distance must be > 0".into(),
            )),
            _ => Ok(()),
        }
    }

    /// The loss in dB at `distance` (clamped to ≥ 1 m to avoid the
    /// near-field singularity).
    pub fn loss_db(&self, distance: Meters) -> f64 {
        let d = distance.as_meters().max(1.0);
        match *self {
            PathLoss::FreeSpace { carrier_ghz } => {
                // FSPL(dB) = 20 log10(d) + 20 log10(f) + 32.44, d in km, f in MHz
                20.0 * (d / 1000.0).log10() + 20.0 * (carrier_ghz * 1000.0).log10() + 32.44
            }
            PathLoss::LogDistance {
                exponent,
                ref_loss_db,
                ref_distance_m,
            } => ref_loss_db + 10.0 * exponent * (d / ref_distance_m).log10(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_increases_with_distance() {
        for model in [
            PathLoss::FreeSpace { carrier_ghz: 3.5 },
            PathLoss::urban_default(),
        ] {
            let near = model.loss_db(Meters::new(10.0));
            let far = model.loss_db(Meters::new(100.0));
            assert!(far > near, "{model:?}: {far} vs {near}");
        }
    }

    #[test]
    fn log_distance_slope() {
        let model = PathLoss::LogDistance {
            exponent: 3.0,
            ref_loss_db: 40.0,
            ref_distance_m: 1.0,
        };
        // 10× distance ⇒ +30 dB at exponent 3.
        let a = model.loss_db(Meters::new(10.0));
        let b = model.loss_db(Meters::new(100.0));
        assert!((b - a - 30.0).abs() < 1e-9);
        assert!((model.loss_db(Meters::new(1.0)) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn free_space_reference_value() {
        // FSPL at 1 km, 1 GHz ≈ 92.44 dB.
        let model = PathLoss::FreeSpace { carrier_ghz: 1.0 };
        assert!((model.loss_db(Meters::new(1000.0)) - 92.44).abs() < 0.1);
    }

    #[test]
    fn near_field_clamped() {
        let model = PathLoss::urban_default();
        assert_eq!(
            model.loss_db(Meters::new(0.01)),
            model.loss_db(Meters::new(1.0))
        );
    }

    #[test]
    fn validation() {
        assert!(PathLoss::FreeSpace { carrier_ghz: 0.0 }.validate().is_err());
        assert!(PathLoss::urban_default().validate().is_ok());
        assert!(PathLoss::LogDistance {
            exponent: -1.0,
            ref_loss_db: 40.0,
            ref_distance_m: 1.0
        }
        .validate()
        .is_err());
    }
}
