//! The pluggable wireless-environment API.
//!
//! [`ChannelModel`] is the trait every latency calculator and training
//! scheme talks to: per-round uplink/downlink/compute/availability
//! queries, plus a [`RoundConditions`] snapshot of the whole network at
//! one round. Two implementations ship:
//!
//! * [`StaticEnvironment`] — a transparent wrapper over the composed
//!   [`LatencyModel`]; every round sees the same topology, bandwidth and
//!   device fleet (fading still varies per block). This reproduces the
//!   pre-trait behavior bit-for-bit.
//! * [`DynamicEnvironment`] — the static base plus time-varying overlays:
//!   mobility-driven path-loss drift ([`Mobility`]), diurnal/congested
//!   bandwidth profiles ([`BandwidthProfile`]), straggler injection
//!   ([`StragglerInjector`]) and dropout injection ([`DropoutInjector`]).
//!
//! Ready-made presets over these overlays live in [`crate::scenario`].

use crate::energy::PowerProfile;
use crate::fault::{FaultInjector, FaultSpec, TransferOutcome};
use crate::interference::{co_channel_interference_mw, InterferenceSpec};
use crate::latency::LatencyModel;
use crate::mobility::Mobility;
use crate::server::EdgeServer;
use crate::units::{Bytes, FlopsRate, Hertz, Meters, Seconds};
use crate::{Result, WirelessError};
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-round view of the wireless environment.
///
/// Every query takes the round number so implementations can vary
/// conditions over time; static environments simply ignore it.
/// Transmission times take an explicit bandwidth `share` — callers
/// (the latency calculators) decide how the round's total bandwidth,
/// reported by [`ChannelModel::total_bandwidth`], is divided.
pub trait ChannelModel: std::fmt::Debug + Send + Sync {
    /// Number of clients in the network.
    fn client_count(&self) -> usize;

    /// Total system bandwidth available in `round`.
    fn total_bandwidth(&self, round: u64) -> Hertz;

    /// The edge-server profile (rate and parallel slots).
    fn server(&self) -> &EdgeServer;

    /// The client power-draw profile used for energy accounting.
    fn power(&self) -> &PowerProfile;

    /// The effective AP distance of `client` in `round`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    fn distance(&self, client: usize, round: u64) -> Result<Meters>;

    /// The effective compute rate of `client` in `round`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    fn device_rate(&self, client: usize, round: u64) -> Result<FlopsRate>;

    /// Uplink transmission time over an allocated bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] / [`WirelessError::Config`]
    /// on bad indices or zero share.
    fn uplink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds>;

    /// Downlink transmission time over an allocated bandwidth share.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] / [`WirelessError::Config`]
    /// on bad indices or zero share.
    fn downlink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds>;

    /// Achievable uplink rate in bits/s over `share` bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    fn uplink_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64>;

    /// The uplink fading power gain of `client` in `round`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    fn uplink_gain(&self, client: usize, round: u64) -> Result<f64>;

    /// On-device compute time of `client` in `round`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    fn client_compute(&self, client: usize, flops: u64, round: u64) -> Result<Seconds>;

    /// Compute time of one edge-server slot.
    fn server_compute(&self, flops: u64) -> Seconds;

    /// Whether the client's radio is reachable in `round` (dropout
    /// injection). Defaults to always reachable.
    fn is_available(&self, client: usize, round: u64) -> bool {
        let _ = (client, round);
        true
    }

    /// The fate of wire transfer number `transfer` of `client` in
    /// `round`: how many attempts it took and the backoff accrued
    /// between them (see [`crate::fault`]). The default — and what every
    /// fault-free environment answers — is the clean first-try outcome,
    /// which prices bit-identically to the pre-fault path.
    fn transfer_outcome(&self, client: usize, round: u64, transfer: u64) -> TransferOutcome {
        let _ = (client, round, transfer);
        TransferOutcome::clean()
    }

    /// Mid-compute crash injection: `Some(progress)` when `client` dies
    /// in `round` after completing `progress ∈ [0, 1)` of its local
    /// work. Defaults to never crashing.
    fn crash_point(&self, client: usize, round: u64) -> Option<f64> {
        let _ = (client, round);
        None
    }

    /// Whether AP `ap` is online in `round` (outage-window injection).
    /// Defaults to always online.
    fn ap_online(&self, ap: usize, round: u64) -> bool {
        let _ = (ap, round);
        true
    }

    /// The co-channel interference parameters of this environment, if
    /// concurrent transmitters interfere at all. `None` (the default)
    /// means perfectly orthogonal access — the historical behavior.
    fn interference(&self) -> Option<InterferenceSpec> {
        None
    }

    /// Uplink transmission time while `interferers` transmit concurrently
    /// co-channel. The default ignores the interferer set (orthogonal
    /// access); interference-aware environments degrade the rate from SNR
    /// to SINR. Implementations skip `client` itself if it appears in
    /// `interferers`.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelModel::uplink_time`].
    fn uplink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<Seconds> {
        let _ = interferers;
        self.uplink_time(client, payload, round, share)
    }

    /// Achievable uplink rate in bits/s while `interferers` transmit
    /// concurrently (see [`ChannelModel::uplink_time_among`]).
    ///
    /// # Errors
    ///
    /// Same as [`ChannelModel::uplink_rate_bps`].
    fn uplink_rate_bps_among(
        &self,
        client: usize,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<f64> {
        let _ = interferers;
        self.uplink_rate_bps(client, round, share)
    }

    /// Downlink transmission time while the APs concurrently serve
    /// `receivers` (other clients mid-downlink) co-channel. The default
    /// ignores the set (orthogonal access — the historical behavior);
    /// interference-aware environments degrade the rate from SNR to
    /// SINR, hearing each concurrent downlink's transmitter (the AP
    /// serving that receiver) at the victim client. Implementations skip
    /// `client` itself if it appears in `receivers`.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelModel::downlink_time`].
    fn downlink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        receivers: &[usize],
    ) -> Result<Seconds> {
        let _ = receivers;
        self.downlink_time(client, payload, round, share)
    }

    /// Number of access points / edge servers in the environment.
    /// Single-AP environments (the default) report 1.
    fn ap_count(&self) -> usize {
        1
    }

    /// The AP `client` is associated with in `round`. Single-AP
    /// environments always answer 0.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::UnknownClient`] for bad indices.
    fn ap_of(&self, client: usize, round: u64) -> Result<usize> {
        let _ = round;
        if client >= self.client_count() {
            return Err(WirelessError::UnknownClient {
                client,
                clients: self.client_count(),
            });
        }
        Ok(0)
    }

    /// The edge-server profile co-located with AP `ap`. Single-AP
    /// environments return their only server for every index.
    fn server_at(&self, ap: usize) -> &EdgeServer {
        let _ = ap;
        self.server()
    }

    /// Compute time of one slot of AP `ap`'s edge server.
    fn server_compute_at(&self, ap: usize, flops: u64) -> Seconds {
        let _ = ap;
        self.server_compute(flops)
    }

    /// The backhaul link from AP `ap`'s edge server up to the aggregation
    /// tier, if this environment prices that hop. `None` (the default)
    /// means an infinitely fast backhaul — the historical single-tier
    /// behavior, and what keeps 1-AP environments byte-identical.
    fn backhaul(&self, ap: usize) -> Option<crate::backhaul::BackhaulLink> {
        let _ = ap;
        None
    }

    /// A snapshot of the whole network's conditions in `round`.
    ///
    /// # Errors
    ///
    /// Propagates per-client query errors.
    fn conditions(&self, round: u64) -> Result<RoundConditions> {
        let clients = (0..self.client_count())
            .map(|c| {
                Ok(ClientConditions {
                    client: c,
                    distance: self.distance(c, round)?,
                    compute_rate: self.device_rate(c, round)?,
                    uplink_gain: self.uplink_gain(c, round)?,
                    available: self.is_available(c, round),
                    ap: self.ap_of(c, round)?,
                })
            })
            .collect::<Result<Vec<ClientConditions>>>()?;
        Ok(RoundConditions {
            round,
            bandwidth: self.total_bandwidth(round),
            clients,
        })
    }
}

/// The state of one client as seen in a [`RoundConditions`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientConditions {
    /// Client index.
    pub client: usize,
    /// Effective AP distance this round.
    pub distance: Meters,
    /// Effective compute rate this round.
    pub compute_rate: FlopsRate,
    /// Uplink fading power gain this round.
    pub uplink_gain: f64,
    /// Whether the client is reachable this round.
    pub available: bool,
    /// The AP / edge server the client is associated with this round
    /// (always 0 in single-AP environments).
    #[serde(default)]
    pub ap: usize,
}

/// A per-round snapshot of the environment, consumed by the latency
/// calculators (bandwidth-share math, availability) and handy for
/// tracing why a round was slow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundConditions {
    /// The round this snapshot describes.
    pub round: u64,
    /// Total bandwidth available this round.
    pub bandwidth: Hertz,
    /// Per-client conditions, indexed by client id.
    pub clients: Vec<ClientConditions>,
}

impl RoundConditions {
    /// The fixed OFDMA subchannel each of the N registered clients owns
    /// this round (`B/N`).
    pub fn dedicated_share(&self) -> Hertz {
        self.bandwidth
            .fraction(1.0 / self.clients.len().max(1) as f64)
    }

    /// The clients reachable this round.
    pub fn available_clients(&self) -> Vec<usize> {
        self.clients
            .iter()
            .filter(|c| c.available)
            .map(|c| c.client)
            .collect()
    }
}

/// The always-the-same environment: a transparent [`ChannelModel`] view
/// of the composed [`LatencyModel`]. Query-for-query identical to calling
/// the model directly, so results through the trait are byte-identical to
/// the pre-trait code path.
#[derive(Debug, Clone)]
pub struct StaticEnvironment {
    base: LatencyModel,
    interference: Option<InterferenceSpec>,
}

impl StaticEnvironment {
    /// Wraps a composed latency model.
    pub fn new(base: LatencyModel) -> Self {
        StaticEnvironment {
            base,
            interference: None,
        }
    }

    /// Enables co-channel interference between concurrent transmitters.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for a reuse factor outside
    /// `[0, 1]`.
    pub fn with_interference(mut self, spec: InterferenceSpec) -> Result<Self> {
        spec.validate()?;
        self.interference = Some(spec);
        Ok(self)
    }

    /// The wrapped model.
    pub fn base(&self) -> &LatencyModel {
        &self.base
    }

    fn interference_mw(&self, client: usize, round: u64, interferers: &[usize]) -> Result<f64> {
        let Some(spec) = self.interference else {
            return Ok(0.0);
        };
        let mut sources = Vec::with_capacity(interferers.len());
        for &i in interferers {
            if i == client {
                continue;
            }
            let d = self.base.distance(i)?;
            sources.push((d, self.base.uplink_gain(i, round)));
        }
        Ok(co_channel_interference_mw(
            self.base.uplink_budget(),
            &sources,
            spec,
        ))
    }

    /// Aggregate downlink interference at `client`: every concurrent
    /// downlink leaks from the (single) AP, so each receiver in
    /// `receivers` contributes the AP's received power over the victim's
    /// own AP path (distance and downlink fading), scaled by the reuse
    /// factor.
    fn downlink_interference_mw(
        &self,
        client: usize,
        round: u64,
        receivers: &[usize],
    ) -> Result<f64> {
        let Some(spec) = self.interference else {
            return Ok(0.0);
        };
        let d = self.base.distance(client)?;
        let gain = self.base.downlink_gain(client, round);
        let others = receivers.iter().filter(|&&r| r != client).count();
        let sources = vec![(d, gain); others];
        Ok(co_channel_interference_mw(
            self.base.downlink_budget(),
            &sources,
            spec,
        ))
    }
}

impl ChannelModel for StaticEnvironment {
    fn client_count(&self) -> usize {
        self.base.client_count()
    }

    fn total_bandwidth(&self, _round: u64) -> Hertz {
        self.base.total_bandwidth()
    }

    fn server(&self) -> &EdgeServer {
        self.base.server()
    }

    fn power(&self) -> &PowerProfile {
        self.base.power()
    }

    fn distance(&self, client: usize, _round: u64) -> Result<Meters> {
        self.base.distance(client)
    }

    fn device_rate(&self, client: usize, _round: u64) -> Result<FlopsRate> {
        Ok(self.base.device(client)?.rate())
    }

    fn uplink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        self.base.uplink_time_with(client, payload, round, share)
    }

    fn downlink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        self.base.downlink_time_with(client, payload, round, share)
    }

    fn uplink_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64> {
        self.base.uplink_rate_bps(client, round, share)
    }

    fn uplink_gain(&self, client: usize, round: u64) -> Result<f64> {
        self.base.distance(client)?; // index check
        Ok(self.base.uplink_gain(client, round))
    }

    fn client_compute(&self, client: usize, flops: u64, _round: u64) -> Result<Seconds> {
        self.base.client_compute(client, flops)
    }

    fn server_compute(&self, flops: u64) -> Seconds {
        self.base.server_compute(flops)
    }

    fn interference(&self) -> Option<InterferenceSpec> {
        self.interference
    }

    fn uplink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<Seconds> {
        let d = self.base.distance(client)?;
        let i_mw = self.interference_mw(client, round, interferers)?;
        self.base
            .uplink_time_at_sinr(client, payload, round, share, d, i_mw)
    }

    fn uplink_rate_bps_among(
        &self,
        client: usize,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<f64> {
        let d = self.base.distance(client)?;
        let i_mw = self.interference_mw(client, round, interferers)?;
        Ok(self
            .base
            .uplink_rate_bps_at_sinr(client, round, share, d, i_mw))
    }

    fn downlink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        receivers: &[usize],
    ) -> Result<Seconds> {
        let d = self.base.distance(client)?;
        let i_mw = self.downlink_interference_mw(client, round, receivers)?;
        self.base
            .downlink_time_at_sinr(client, payload, round, share, d, i_mw)
    }
}

/// How the total system bandwidth varies over rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BandwidthProfile {
    /// Full bandwidth every round.
    #[default]
    Constant,
    /// A permanently narrow band: `frac` of the nominal bandwidth every
    /// round (spectrum licensing, a shared backhaul cap). The
    /// bandwidth-constrained regime where payload compression pays.
    Scaled {
        /// Fraction of the nominal band available, in `(0, 1]`.
        frac: f64,
    },
    /// Smooth day/night load cycle: available bandwidth oscillates
    /// between the full band (off-peak) and `trough_frac` of it (peak
    /// congestion) with period `period_rounds`.
    Diurnal {
        /// Rounds per full cycle.
        period_rounds: u64,
        /// Fraction of the band left at peak congestion, in `(0, 1]`.
        trough_frac: f64,
    },
    /// Random congestion spikes: with probability `probability` a round's
    /// bandwidth collapses to `frac` of the band (deterministic per
    /// round given the environment seed).
    Spikes {
        /// Per-round spike probability, in `[0, 1]`.
        probability: f64,
        /// Fraction of the band left during a spike, in `(0, 1]`.
        frac: f64,
    },
}

impl BandwidthProfile {
    /// The multiplier on the base bandwidth in `round`.
    fn factor(&self, round: u64, seeds: &SeedDerive) -> f64 {
        match *self {
            BandwidthProfile::Constant => 1.0,
            BandwidthProfile::Scaled { frac } => frac,
            BandwidthProfile::Diurnal {
                period_rounds,
                trough_frac,
            } => {
                let period = period_rounds.max(1) as f64;
                let theta = 2.0 * std::f64::consts::PI * round as f64 / period;
                // cos starts at the off-peak maximum (factor 1.0).
                let wave = 0.5 + 0.5 * theta.cos();
                trough_frac + (1.0 - trough_frac) * wave
            }
            BandwidthProfile::Spikes { probability, frac } => {
                let mut rng = seeds.child("bw-spikes").index(round).rng();
                if rng.gen::<f64>() < probability {
                    frac
                } else {
                    1.0
                }
            }
        }
    }
}

/// Deterministic per-round compute-straggler injection: with probability
/// `probability` a client's compute rate is divided by `slowdown` for
/// that round (thermal throttling, background load).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerInjector {
    /// Per-client-round straggle probability, in `[0, 1]`.
    pub probability: f64,
    /// Rate divisor while straggling (≥ 1).
    pub slowdown: f64,
}

impl StragglerInjector {
    /// The compute-rate divisor of `client` in `round` (1.0 = full speed).
    fn slowdown_at(&self, client: usize, round: u64, seeds: &SeedDerive) -> f64 {
        let mut rng = seeds
            .child("stragglers")
            .index(client as u64)
            .index(round)
            .rng();
        if rng.gen::<f64>() < self.probability {
            self.slowdown.max(1.0)
        } else {
            1.0
        }
    }
}

/// Deterministic per-round radio-dropout injection: with probability
/// `probability` a client is unreachable for a round (deep shadowing,
/// cell reselection, battery saver).
///
/// Since the fault layer landed this is a thin alias for the
/// [`FaultSpec::dropout_prob`] channel of the unified
/// [`FaultInjector`] — one seeded failure source — on the *exact* same
/// derived RNG stream, so pre-fault `dropouts` presets stay bitwise
/// identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropoutInjector {
    /// Per-client-round dropout probability, in `[0, 1]`.
    pub probability: f64,
}

/// A time-varying environment: the static base plus mobility, bandwidth,
/// straggler and dropout overlays. Built via [`DynamicEnvironment::builder`]
/// or from a [`crate::scenario::Scenario`] preset.
#[derive(Debug)]
pub struct DynamicEnvironment {
    base: LatencyModel,
    mobility: Box<dyn Mobility>,
    bandwidth: BandwidthProfile,
    stragglers: Option<StragglerInjector>,
    /// The unified seeded failure source: dropouts, transfer loss,
    /// crashes and AP outages all draw from here. `None` ⇔ no fault of
    /// any kind can fire (the identity path).
    faults: Option<FaultInjector>,
    interference: Option<InterferenceSpec>,
    seeds: SeedDerive,
}

/// Builder for [`DynamicEnvironment`].
#[derive(Debug)]
pub struct DynamicEnvironmentBuilder {
    base: LatencyModel,
    mobility: Box<dyn Mobility>,
    bandwidth: BandwidthProfile,
    stragglers: Option<StragglerInjector>,
    dropouts: Option<DropoutInjector>,
    faults: Option<FaultSpec>,
    interference: Option<InterferenceSpec>,
    seed: u64,
}

impl DynamicEnvironment {
    /// Starts a builder over a static base model; with no overlays the
    /// result behaves exactly like [`StaticEnvironment`].
    pub fn builder(base: LatencyModel) -> DynamicEnvironmentBuilder {
        DynamicEnvironmentBuilder {
            base,
            mobility: Box::new(crate::mobility::Stationary),
            bandwidth: BandwidthProfile::Constant,
            stragglers: None,
            dropouts: None,
            faults: None,
            interference: None,
            seed: 0,
        }
    }

    fn straggle_factor(&self, client: usize, round: u64) -> f64 {
        self.stragglers
            .map(|s| s.slowdown_at(client, round, &self.seeds))
            .unwrap_or(1.0)
    }

    fn interference_mw(&self, client: usize, round: u64, interferers: &[usize]) -> Result<f64> {
        let Some(spec) = self.interference else {
            return Ok(0.0);
        };
        let mut sources = Vec::with_capacity(interferers.len());
        for &i in interferers {
            if i == client {
                continue;
            }
            // Interferers are heard from wherever mobility put them.
            let d = self.distance(i, round)?;
            sources.push((d, self.base.uplink_gain(i, round)));
        }
        Ok(co_channel_interference_mw(
            self.base.uplink_budget(),
            &sources,
            spec,
        ))
    }

    /// Downlink twin of [`DynamicEnvironment::interference_mw`]: each
    /// concurrent downlink leaks from the AP over the victim's own
    /// (mobility-driven) AP path.
    fn downlink_interference_mw(
        &self,
        client: usize,
        round: u64,
        receivers: &[usize],
    ) -> Result<f64> {
        let Some(spec) = self.interference else {
            return Ok(0.0);
        };
        let d = self.distance(client, round)?;
        let gain = self.base.downlink_gain(client, round);
        let others = receivers.iter().filter(|&&r| r != client).count();
        let sources = vec![(d, gain); others];
        Ok(co_channel_interference_mw(
            self.base.downlink_budget(),
            &sources,
            spec,
        ))
    }
}

impl DynamicEnvironmentBuilder {
    /// Sets the mobility model.
    pub fn mobility(mut self, m: impl Mobility + 'static) -> Self {
        self.mobility = Box::new(m);
        self
    }

    /// Sets the bandwidth profile.
    pub fn bandwidth(mut self, b: BandwidthProfile) -> Self {
        self.bandwidth = b;
        self
    }

    /// Enables straggler injection.
    pub fn stragglers(mut self, s: StragglerInjector) -> Self {
        self.stragglers = Some(s);
        self
    }

    /// Enables dropout injection (sugar for the
    /// [`FaultSpec::dropout_prob`] channel of the unified fault layer).
    pub fn dropouts(mut self, d: DropoutInjector) -> Self {
        self.dropouts = Some(d);
        self
    }

    /// Enables mid-round fault injection: transfer loss with
    /// retry/backoff pricing, mid-compute crashes and AP outage windows
    /// (see [`crate::fault`]). A [`FaultSpec::dropout_prob`] here
    /// composes with (and is overridden by) an explicit
    /// [`DynamicEnvironmentBuilder::dropouts`] call.
    pub fn faults(mut self, spec: FaultSpec) -> Self {
        self.faults = Some(spec);
        self
    }

    /// Enables co-channel interference between concurrent transmitters.
    pub fn interference(mut self, spec: InterferenceSpec) -> Self {
        self.interference = Some(spec);
        self
    }

    /// Seeds the stochastic overlays (spikes, stragglers, dropouts).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the environment.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for out-of-range probabilities
    /// or fractions.
    pub fn build(self) -> Result<DynamicEnvironment> {
        if let BandwidthProfile::Scaled { frac } = self.bandwidth {
            if !(frac > 0.0 && frac <= 1.0) || frac.is_nan() {
                return Err(WirelessError::Config(format!(
                    "scaled bandwidth frac must be in (0,1], got {frac}"
                )));
            }
        }
        if let BandwidthProfile::Diurnal { trough_frac, .. } = self.bandwidth {
            if !(trough_frac > 0.0 && trough_frac <= 1.0) {
                return Err(WirelessError::Config(format!(
                    "diurnal trough_frac must be in (0,1], got {trough_frac}"
                )));
            }
        }
        if let BandwidthProfile::Spikes { probability, frac } = self.bandwidth {
            if !(0.0..=1.0).contains(&probability) || frac <= 0.0 || frac > 1.0 {
                return Err(WirelessError::Config(
                    "spike probability must be in [0,1] and frac in (0,1]".into(),
                ));
            }
        }
        if let Some(s) = self.stragglers {
            if !(0.0..=1.0).contains(&s.probability) || s.slowdown < 1.0 {
                return Err(WirelessError::Config(
                    "straggler probability must be in [0,1] and slowdown ≥ 1".into(),
                ));
            }
        }
        if let Some(d) = self.dropouts {
            if !(0.0..=1.0).contains(&d.probability) {
                return Err(WirelessError::Config(
                    "dropout probability must be in [0,1]".into(),
                ));
            }
        }
        if let Some(i) = self.interference {
            i.validate()?;
        }
        // One seeded failure source: an explicit dropout injector folds
        // into the fault spec's dropout channel (same RNG stream).
        let mut fault_spec = self.faults.unwrap_or_default();
        if let Some(d) = self.dropouts {
            fault_spec.dropout_prob = d.probability;
        }
        let seeds = SeedDerive::new(self.seed).child("environment");
        let faults = if fault_spec.is_noop() {
            fault_spec.validate()?;
            None
        } else {
            Some(FaultInjector::new(fault_spec, seeds)?)
        };
        Ok(DynamicEnvironment {
            base: self.base,
            mobility: self.mobility,
            bandwidth: self.bandwidth,
            stragglers: self.stragglers,
            faults,
            interference: self.interference,
            seeds,
        })
    }
}

impl ChannelModel for DynamicEnvironment {
    fn client_count(&self) -> usize {
        self.base.client_count()
    }

    fn total_bandwidth(&self, round: u64) -> Hertz {
        self.base
            .total_bandwidth()
            .fraction(self.bandwidth.factor(round, &self.seeds))
    }

    fn server(&self) -> &EdgeServer {
        self.base.server()
    }

    fn power(&self) -> &PowerProfile {
        self.base.power()
    }

    fn distance(&self, client: usize, round: u64) -> Result<Meters> {
        let placed = self.base.distance(client)?;
        Ok(self.mobility.distance_at(client, placed, round))
    }

    fn device_rate(&self, client: usize, round: u64) -> Result<FlopsRate> {
        let base = self.base.device(client)?.rate();
        let factor = self.straggle_factor(client, round);
        Ok(FlopsRate::new(base.as_flops_per_sec() / factor))
    }

    fn uplink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        self.base.uplink_time_at(client, payload, round, share, d)
    }

    fn downlink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        self.base.downlink_time_at(client, payload, round, share, d)
    }

    fn uplink_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64> {
        let d = self.distance(client, round)?;
        Ok(self.base.uplink_rate_bps_at(client, round, share, d))
    }

    fn uplink_gain(&self, client: usize, round: u64) -> Result<f64> {
        self.base.distance(client)?; // index check
        Ok(self.base.uplink_gain(client, round))
    }

    fn client_compute(&self, client: usize, flops: u64, round: u64) -> Result<Seconds> {
        Ok(self.device_rate(client, round)?.time_for(flops))
    }

    fn server_compute(&self, flops: u64) -> Seconds {
        self.base.server_compute(flops)
    }

    fn is_available(&self, client: usize, round: u64) -> bool {
        match &self.faults {
            // Single-AP environment: every client hangs off AP 0, so an
            // AP outage takes the whole cell dark.
            Some(f) => f.client_available(client, 0, round),
            None => true,
        }
    }

    fn transfer_outcome(&self, client: usize, round: u64, transfer: u64) -> TransferOutcome {
        match &self.faults {
            Some(f) => f.transfer_outcome(client, round, transfer),
            None => TransferOutcome::clean(),
        }
    }

    fn crash_point(&self, client: usize, round: u64) -> Option<f64> {
        self.faults
            .as_ref()
            .and_then(|f| f.crash_point(client, round))
    }

    fn ap_online(&self, ap: usize, round: u64) -> bool {
        match &self.faults {
            Some(f) => f.ap_online(ap, round),
            None => true,
        }
    }

    fn interference(&self) -> Option<InterferenceSpec> {
        self.interference
    }

    fn uplink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        let i_mw = self.interference_mw(client, round, interferers)?;
        self.base
            .uplink_time_at_sinr(client, payload, round, share, d, i_mw)
    }

    fn uplink_rate_bps_among(
        &self,
        client: usize,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<f64> {
        let d = self.distance(client, round)?;
        let i_mw = self.interference_mw(client, round, interferers)?;
        Ok(self
            .base
            .uplink_rate_bps_at_sinr(client, round, share, d, i_mw))
    }

    fn downlink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        receivers: &[usize],
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        let i_mw = self.downlink_interference_mw(client, round, receivers)?;
        self.base
            .downlink_time_at_sinr(client, payload, round, share, d, i_mw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::OrbitDrift;

    fn base(clients: usize) -> LatencyModel {
        LatencyModel::builder()
            .clients(clients)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn static_environment_matches_model_exactly() {
        let model = base(4);
        let env = StaticEnvironment::new(model.clone());
        let payload = Bytes::new(200_000);
        let share = Hertz::from_mhz(1.0);
        for round in 0..8u64 {
            for c in 0..4 {
                assert_eq!(
                    env.uplink_time(c, payload, round, share).unwrap(),
                    model.uplink_time_with(c, payload, round, share).unwrap()
                );
                assert_eq!(
                    env.downlink_time(c, payload, round, share).unwrap(),
                    model.downlink_time_with(c, payload, round, share).unwrap()
                );
                assert_eq!(
                    env.client_compute(c, 1_000_000, round).unwrap(),
                    model.client_compute(c, 1_000_000).unwrap()
                );
                assert!(env.is_available(c, round));
            }
            assert_eq!(env.total_bandwidth(round), model.total_bandwidth());
        }
        assert_eq!(
            env.server_compute(1_000_000),
            model.server_compute(1_000_000)
        );
    }

    #[test]
    fn no_overlay_dynamic_matches_static() {
        let model = base(3);
        let dynamic = DynamicEnvironment::builder(model.clone()).build().unwrap();
        let env = StaticEnvironment::new(model);
        let payload = Bytes::new(50_000);
        let share = Hertz::from_mhz(2.0);
        for round in 0..5u64 {
            for c in 0..3 {
                assert_eq!(
                    dynamic.uplink_time(c, payload, round, share).unwrap(),
                    env.uplink_time(c, payload, round, share).unwrap()
                );
                assert_eq!(
                    dynamic.device_rate(c, round).unwrap(),
                    env.device_rate(c, round).unwrap()
                );
            }
        }
    }

    #[test]
    fn mobility_changes_distances_and_times() {
        let env = DynamicEnvironment::builder(base(2))
            .mobility(OrbitDrift {
                amplitude_frac: 0.5,
                period_rounds: 7,
            })
            .build()
            .unwrap();
        let d1 = env.distance(0, 1).unwrap();
        let d2 = env.distance(0, 3).unwrap();
        assert_ne!(d1, d2, "mobility must move the client");
    }

    #[test]
    fn diurnal_bandwidth_cycles() {
        let env = DynamicEnvironment::builder(base(2))
            .bandwidth(BandwidthProfile::Diurnal {
                period_rounds: 10,
                trough_frac: 0.25,
            })
            .build()
            .unwrap();
        let full = env.total_bandwidth(0).as_hz();
        let trough = env.total_bandwidth(5).as_hz();
        assert!((trough / full - 0.25).abs() < 1e-9, "half period = trough");
        assert!((env.total_bandwidth(10).as_hz() - full).abs() < 1e-6);
    }

    #[test]
    fn stragglers_slow_compute_deterministically() {
        let env = DynamicEnvironment::builder(base(2))
            .stragglers(StragglerInjector {
                probability: 1.0,
                slowdown: 4.0,
            })
            .seed(9)
            .build()
            .unwrap();
        let plain = StaticEnvironment::new(base(2));
        let slow = env.client_compute(0, 1_000_000_000, 3).unwrap();
        let fast = plain.client_compute(0, 1_000_000_000, 3).unwrap();
        assert!((slow.as_secs_f64() / fast.as_secs_f64() - 4.0).abs() < 1e-9);
        assert_eq!(slow, env.client_compute(0, 1_000_000_000, 3).unwrap());
    }

    #[test]
    fn dropouts_are_deterministic_and_partial() {
        let env = DynamicEnvironment::builder(base(4))
            .dropouts(DropoutInjector { probability: 0.5 })
            .seed(1)
            .build()
            .unwrap();
        let mut dropped = 0;
        let mut up = 0;
        for round in 0..50u64 {
            for c in 0..4 {
                let a = env.is_available(c, round);
                assert_eq!(a, env.is_available(c, round));
                if a {
                    up += 1;
                } else {
                    dropped += 1;
                }
            }
        }
        assert!(dropped > 0 && up > 0, "p=0.5 must mix: {dropped} / {up}");
    }

    #[test]
    fn conditions_snapshot_reflects_overlays() {
        let env = DynamicEnvironment::builder(base(3))
            .bandwidth(BandwidthProfile::Diurnal {
                period_rounds: 8,
                trough_frac: 0.5,
            })
            .mobility(OrbitDrift::default())
            .build()
            .unwrap();
        let c0 = env.conditions(0).unwrap();
        let c4 = env.conditions(4).unwrap();
        assert_eq!(c0.clients.len(), 3);
        assert!(c4.bandwidth.as_hz() < c0.bandwidth.as_hz());
        assert_ne!(c0.clients[0].distance, c4.clients[0].distance);
        assert_eq!(c0.available_clients(), vec![0, 1, 2]);
        let share = c0.dedicated_share().as_hz();
        assert!((share * 3.0 - c0.bandwidth.as_hz()).abs() < 1e-6);
    }

    #[test]
    fn builder_validation() {
        assert!(DynamicEnvironment::builder(base(1))
            .stragglers(StragglerInjector {
                probability: 1.5,
                slowdown: 2.0
            })
            .build()
            .is_err());
        assert!(DynamicEnvironment::builder(base(1))
            .stragglers(StragglerInjector {
                probability: 0.5,
                slowdown: 0.5
            })
            .build()
            .is_err());
        assert!(DynamicEnvironment::builder(base(1))
            .dropouts(DropoutInjector { probability: -0.1 })
            .build()
            .is_err());
        assert!(DynamicEnvironment::builder(base(1))
            .bandwidth(BandwidthProfile::Diurnal {
                period_rounds: 5,
                trough_frac: 0.0
            })
            .build()
            .is_err());
        assert!(DynamicEnvironment::builder(base(1))
            .bandwidth(BandwidthProfile::Spikes {
                probability: 2.0,
                frac: 0.5
            })
            .build()
            .is_err());
    }

    #[test]
    fn interference_free_among_is_bitwise_plain_uplink() {
        // Even *with* a spec, an empty interferer set must reproduce the
        // plain SNR uplink time bit for bit (the golden-fixture guard).
        let model = base(3);
        let plain = StaticEnvironment::new(model.clone());
        let spec = InterferenceSpec { reuse_factor: 0.7 };
        let noisy = StaticEnvironment::new(model)
            .with_interference(spec)
            .unwrap();
        let payload = Bytes::new(120_000);
        let share = Hertz::from_mhz(1.5);
        for round in 0..6u64 {
            for c in 0..3 {
                assert_eq!(
                    noisy
                        .uplink_time_among(c, payload, round, share, &[])
                        .unwrap(),
                    plain.uplink_time(c, payload, round, share).unwrap()
                );
                // Self-interference is skipped.
                assert_eq!(
                    noisy
                        .uplink_time_among(c, payload, round, share, &[c])
                        .unwrap(),
                    plain.uplink_time(c, payload, round, share).unwrap()
                );
            }
        }
    }

    #[test]
    fn concurrent_transmitters_slow_the_uplink() {
        let env = StaticEnvironment::new(base(4))
            .with_interference(InterferenceSpec { reuse_factor: 0.5 })
            .unwrap();
        let payload = Bytes::new(200_000);
        let share = Hertz::from_mhz(1.0);
        let clean = env.uplink_time_among(0, payload, 2, share, &[]).unwrap();
        let one = env.uplink_time_among(0, payload, 2, share, &[1]).unwrap();
        let two = env
            .uplink_time_among(0, payload, 2, share, &[1, 2])
            .unwrap();
        assert!(one.as_secs_f64() > clean.as_secs_f64());
        assert!(two.as_secs_f64() > one.as_secs_f64());
        let r_clean = env.uplink_rate_bps_among(0, 2, share, &[]).unwrap();
        let r_two = env.uplink_rate_bps_among(0, 2, share, &[1, 2]).unwrap();
        assert!(r_two < r_clean);
    }

    #[test]
    fn dynamic_interference_follows_mobility() {
        let spec = InterferenceSpec { reuse_factor: 1.0 };
        let env = DynamicEnvironment::builder(base(2))
            .mobility(OrbitDrift {
                amplitude_frac: 0.5,
                period_rounds: 7,
            })
            .interference(spec)
            .build()
            .unwrap();
        assert_eq!(env.interference(), Some(spec));
        let share = Hertz::from_mhz(1.0);
        let a = env
            .uplink_time_among(0, Bytes::new(100_000), 1, share, &[1])
            .unwrap();
        let b = env
            .uplink_time_among(0, Bytes::new(100_000), 3, share, &[1])
            .unwrap();
        assert_ne!(a, b, "mobility must move the interferer too");
        assert!(DynamicEnvironment::builder(base(1))
            .interference(InterferenceSpec { reuse_factor: 2.0 })
            .build()
            .is_err());
    }

    #[test]
    fn single_ap_defaults_through_trait() {
        let env = StaticEnvironment::new(base(2));
        assert_eq!(env.ap_count(), 1);
        assert_eq!(env.ap_of(1, 5).unwrap(), 0);
        assert!(env.ap_of(9, 0).is_err());
        assert_eq!(env.server_at(0).slots(), env.server().slots());
        assert_eq!(
            env.server_compute_at(0, 1_000_000),
            env.server_compute(1_000_000)
        );
        let cond = env.conditions(0).unwrap();
        assert!(cond.clients.iter().all(|c| c.ap == 0));
    }

    #[test]
    fn unknown_client_errors_through_trait() {
        let env = StaticEnvironment::new(base(2));
        assert!(env.distance(9, 0).is_err());
        assert!(env.device_rate(9, 0).is_err());
        assert!(env.uplink_gain(9, 0).is_err());
    }
}
