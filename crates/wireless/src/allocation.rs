//! Bandwidth allocation among concurrent transmitters.
//!
//! When several clients transmit in the same phase (FL uploads, parallel
//! GSFL groups), the AP's total bandwidth is divided among them. The
//! policy is one of the resource-allocation axes the paper's future work
//! (§IV) calls out.

use crate::units::Hertz;
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// How total bandwidth is divided among `n` concurrent links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BandwidthPolicy {
    /// Equal split: every active link gets `B/n`.
    #[default]
    Equal,
    /// Payload-weighted: links with more bytes to move get proportionally
    /// more bandwidth (idealized proportional-fair).
    PayloadWeighted,
    /// Channel-aware: bandwidth proportional to the inverse of spectral
    /// efficiency, equalizing completion times (idealized water-filling).
    ChannelAware,
}

/// Per-link context the allocator may use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDemand {
    /// Bytes this link must move in the phase.
    pub payload_bytes: u64,
    /// Spectral efficiency of the link in bits/s/Hz (rate per unit
    /// bandwidth), used by [`BandwidthPolicy::ChannelAware`].
    pub spectral_efficiency: f64,
}

/// Splits `total` bandwidth across the given link demands.
///
/// Returns one [`Hertz`] per demand; the shares always sum to `total`
/// (up to floating-point rounding).
///
/// # Errors
///
/// Returns [`WirelessError::Config`] for an empty demand list,
/// non-positive total bandwidth, or degenerate demands (all-zero payloads
/// for [`BandwidthPolicy::PayloadWeighted`], non-positive efficiencies for
/// [`BandwidthPolicy::ChannelAware`]).
pub fn allocate(
    policy: BandwidthPolicy,
    total: Hertz,
    demands: &[LinkDemand],
) -> Result<Vec<Hertz>> {
    if demands.is_empty() {
        return Err(WirelessError::Config("no links to allocate".into()));
    }
    if total.as_hz() <= 0.0 {
        return Err(WirelessError::Config("total bandwidth must be > 0".into()));
    }
    let n = demands.len();
    let weights: Vec<f64> = match policy {
        BandwidthPolicy::Equal => vec![1.0; n],
        BandwidthPolicy::PayloadWeighted => {
            let w: Vec<f64> = demands.iter().map(|d| d.payload_bytes as f64).collect();
            if w.iter().sum::<f64>() <= 0.0 {
                return Err(WirelessError::Config(
                    "payload-weighted allocation needs a non-zero payload".into(),
                ));
            }
            w
        }
        BandwidthPolicy::ChannelAware => {
            // Completion time of link i with share w_i: bytes_i/(w_i·B·se_i).
            // Equalizing times ⇒ w_i ∝ bytes_i / se_i.
            if demands.iter().any(|d| d.spectral_efficiency <= 0.0) {
                return Err(WirelessError::Config(
                    "channel-aware allocation needs positive spectral efficiencies".into(),
                ));
            }
            demands
                .iter()
                .map(|d| {
                    let b = (d.payload_bytes as f64).max(1.0);
                    b / d.spectral_efficiency
                })
                .collect()
        }
    };
    let sum: f64 = weights.iter().sum();
    Ok(weights
        .into_iter()
        .map(|w| total.fraction(w / sum))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(bytes: u64, se: f64) -> LinkDemand {
        LinkDemand {
            payload_bytes: bytes,
            spectral_efficiency: se,
        }
    }

    #[test]
    fn equal_split() {
        let shares = allocate(
            BandwidthPolicy::Equal,
            Hertz::from_mhz(6.0),
            &[demand(1, 1.0), demand(100, 2.0), demand(7, 0.5)],
        )
        .unwrap();
        for s in &shares {
            assert!((s.as_hz() - 2e6).abs() < 1.0);
        }
    }

    #[test]
    fn payload_weighted_proportional() {
        let shares = allocate(
            BandwidthPolicy::PayloadWeighted,
            Hertz::new(100.0),
            &[demand(10, 1.0), demand(30, 1.0)],
        )
        .unwrap();
        assert!((shares[0].as_hz() - 25.0).abs() < 1e-9);
        assert!((shares[1].as_hz() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn channel_aware_equalizes_completion_times() {
        let demands = [demand(1000, 1.0), demand(1000, 4.0)];
        let total = Hertz::new(100.0);
        let shares = allocate(BandwidthPolicy::ChannelAware, total, &demands).unwrap();
        // time_i = bytes/(share·se) must be equal across links.
        let t0 = 1000.0 / (shares[0].as_hz() * 1.0);
        let t1 = 1000.0 / (shares[1].as_hz() * 4.0);
        assert!((t0 - t1).abs() / t0 < 1e-9);
    }

    #[test]
    fn shares_sum_to_total() {
        for policy in [
            BandwidthPolicy::Equal,
            BandwidthPolicy::PayloadWeighted,
            BandwidthPolicy::ChannelAware,
        ] {
            let shares = allocate(
                policy,
                Hertz::new(1234.5),
                &[demand(5, 0.5), demand(50, 2.0), demand(500, 1.0)],
            )
            .unwrap();
            let sum: f64 = shares.iter().map(Hertz::as_hz).sum();
            assert!((sum - 1234.5).abs() < 1e-6, "{policy:?}");
        }
    }

    #[test]
    fn validation_errors() {
        assert!(allocate(BandwidthPolicy::Equal, Hertz::new(10.0), &[]).is_err());
        assert!(allocate(BandwidthPolicy::Equal, Hertz::new(0.0), &[demand(1, 1.0)]).is_err());
        assert!(allocate(
            BandwidthPolicy::PayloadWeighted,
            Hertz::new(10.0),
            &[demand(0, 1.0)]
        )
        .is_err());
        assert!(allocate(
            BandwidthPolicy::ChannelAware,
            Hertz::new(10.0),
            &[demand(1, 0.0)]
        )
        .is_err());
    }
}
