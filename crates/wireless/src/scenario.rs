//! Serde-loadable wireless scenarios.
//!
//! A [`Scenario`] names a wireless environment shape — static, or one of
//! the time-varying overlays from [`crate::environment`] — with its
//! parameters, serializes cleanly inside experiment configs, and builds
//! the matching [`ChannelModel`] over any base [`LatencyModel`].
//!
//! [`Scenario::presets`] lists the ready-made presets the scenario-sweep
//! tooling iterates: `static`, `mobility`, `diurnal`, `congested`,
//! `stragglers`, `dropouts`, `interference`, `multi_ap`, `hierarchical`,
//! `adaptive_cut`, `trace_replay`, `orchestrated`, `composite`,
//! `lossy_uplink`, `chaos`.

use crate::backhaul::BackhaulLink;
use crate::environment::{
    BandwidthProfile, ChannelModel, DropoutInjector, DynamicEnvironment, StaticEnvironment,
    StragglerInjector,
};
use crate::fault::{ApOutageSpec, FaultSpec, RetryPolicy};
use crate::interference::InterferenceSpec;
use crate::latency::LatencyModel;
use crate::mobility::RandomWaypoint;
use crate::multi_ap::{HandoffKind, MultiApEnvironment};
use crate::trace::{ChannelTrace, Resample, TraceEnvironment};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Parameters of the `mobility` scenario (random-waypoint drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilitySpec {
    /// Closest approach to the AP, meters.
    pub min_m: f64,
    /// Farthest excursion, meters.
    pub max_m: f64,
    /// Rounds spent travelling between consecutive waypoints.
    pub epoch_rounds: u64,
}

impl Default for MobilitySpec {
    fn default() -> Self {
        MobilitySpec {
            min_m: 20.0,
            max_m: 200.0,
            epoch_rounds: 10,
        }
    }
}

/// Parameters of the `diurnal` scenario (smooth bandwidth load cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSpec {
    /// Rounds per full day/night cycle.
    pub period_rounds: u64,
    /// Fraction of the band left at peak congestion, in `(0, 1]`.
    pub trough_frac: f64,
}

impl Default for DiurnalSpec {
    fn default() -> Self {
        DiurnalSpec {
            period_rounds: 20,
            trough_frac: 0.3,
        }
    }
}

/// Parameters of the `congested` scenario (random bandwidth spikes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionSpec {
    /// Per-round spike probability, in `[0, 1]`.
    pub probability: f64,
    /// Fraction of the band left during a spike, in `(0, 1]`.
    pub frac: f64,
}

impl Default for CongestionSpec {
    fn default() -> Self {
        CongestionSpec {
            probability: 0.3,
            frac: 0.25,
        }
    }
}

/// Parameters of the `stragglers` scenario (per-round compute slowdowns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerSpec {
    /// Per-client-round straggle probability, in `[0, 1]`.
    pub probability: f64,
    /// Compute-rate divisor while straggling (≥ 1).
    pub slowdown: f64,
}

impl Default for StragglerSpec {
    fn default() -> Self {
        StragglerSpec {
            probability: 0.25,
            slowdown: 4.0,
        }
    }
}

/// Parameters of the `dropouts` scenario (per-round radio dropouts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropoutSpec {
    /// Per-client-round dropout probability, in `[0, 1]`.
    pub probability: f64,
}

impl Default for DropoutSpec {
    fn default() -> Self {
        DropoutSpec { probability: 0.2 }
    }
}

/// Parameters of the `narrowband` scenario: a permanently thin slice of
/// spectrum (licensing, a shared backhaul cap) — the regime where
/// payload compression trades accuracy for real airtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NarrowbandSpec {
    /// Fraction of the nominal band available, in `(0, 1]`.
    pub frac: f64,
}

impl Default for NarrowbandSpec {
    fn default() -> Self {
        NarrowbandSpec { frac: 0.1 }
    }
}

/// Parameters of the `crowded_cell` scenario: a narrow band *and*
/// co-channel interference between concurrent transmitters — the
/// worst-case airtime market where compressed payloads matter most.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrowdedCellSpec {
    /// Fraction of the nominal band available, in `(0, 1]`.
    pub frac: f64,
    /// Co-channel interference between concurrent transmitters.
    pub interference: InterferenceSpec,
}

impl Default for CrowdedCellSpec {
    fn default() -> Self {
        CrowdedCellSpec {
            frac: 0.15,
            interference: InterferenceSpec { reuse_factor: 0.5 },
        }
    }
}

/// Parameters of the `multi_ap` scenario: several APs on a line, each
/// with its own edge server, mobility-driven re-association, and
/// optional cross-AP co-channel interference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiApSpec {
    /// Number of APs, placed on a line through the origin.
    pub aps: usize,
    /// Spacing between neighbouring APs, meters.
    pub spacing_m: f64,
    /// The handoff policy deciding per-round associations.
    pub handoff: HandoffKind,
    /// Co-channel reuse factor across the fleet (0 disables
    /// interference).
    pub reuse_factor: f64,
    /// Optional random-waypoint roaming (drives handoffs); `None` keeps
    /// clients at their placement radii.
    pub mobility: Option<MobilitySpec>,
    /// Optional AP→aggregator backhaul pricing. `None` (the default, and
    /// what the plain `multi_ap` preset uses) keeps the backhaul free —
    /// the historical single-tier behavior.
    #[serde(default)]
    pub backhaul: Option<BackhaulLink>,
}

impl Default for MultiApSpec {
    fn default() -> Self {
        MultiApSpec {
            aps: 3,
            spacing_m: 150.0,
            handoff: HandoffKind::Hysteresis { margin_db: 3.0 },
            reuse_factor: 0.1,
            mobility: Some(MobilitySpec {
                min_m: 20.0,
                max_m: 320.0,
                epoch_rounds: 8,
            }),
            backhaul: None,
        }
    }
}

impl MultiApSpec {
    /// The `hierarchical` preset parameters: the `multi_ap` topology with
    /// the AP→aggregator backhaul priced, so two-tier tree aggregation
    /// pays for its second hop.
    pub fn hierarchical() -> Self {
        MultiApSpec {
            backhaul: Some(BackhaulLink::default()),
            ..MultiApSpec::default()
        }
    }
}

/// Parameters of the `adaptive_cut` scenario: the contested, fast-moving
/// environment the adaptive cut-selection studies run against — a deep
/// diurnal bandwidth cycle, strong co-channel interference, and compute
/// stragglers, so the latency-optimal cut genuinely shifts from round to
/// round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCutSpec {
    /// Diurnal bandwidth cycle (short and deep by default).
    pub diurnal: DiurnalSpec,
    /// Co-channel interference between concurrent transmitters.
    pub interference: InterferenceSpec,
    /// Compute straggler injection.
    pub stragglers: StragglerSpec,
}

impl Default for AdaptiveCutSpec {
    fn default() -> Self {
        AdaptiveCutSpec {
            diurnal: DiurnalSpec {
                period_rounds: 6,
                trough_frac: 0.2,
            },
            interference: InterferenceSpec { reuse_factor: 0.6 },
            stragglers: StragglerSpec {
                probability: 0.3,
                slowdown: 4.0,
            },
        }
    }
}

/// Parameters of the `trace_replay` scenario: the bundled
/// diurnal-cellular [`ChannelTrace`] replayed over the base model (see
/// [`crate::trace`]). Arbitrary trace files load through
/// [`TraceEnvironment::new`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceReplaySpec {
    /// How values between trace samples are reconstructed.
    pub resample: Resample,
    /// Seconds of trace time one training round advances.
    pub round_s: f64,
}

impl Default for TraceReplaySpec {
    fn default() -> Self {
        TraceReplaySpec {
            resample: Resample::Hold,
            round_s: 30.0,
        }
    }
}

/// Parameters of the `orchestrated` scenario: the crowded cell the
/// orchestrator studies run against — congestion that *swings* from
/// round to round (a short, deep diurnal cycle) on top of co-channel
/// interference, compute stragglers and radio dropouts, so the jointly
/// optimal cut/codec/share decision genuinely moves every few rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrchestratedSpec {
    /// Diurnal bandwidth cycle (short and deep by default).
    pub diurnal: DiurnalSpec,
    /// Co-channel interference between concurrent transmitters.
    pub interference: InterferenceSpec,
    /// Compute straggler injection.
    pub stragglers: StragglerSpec,
    /// Radio dropout injection.
    pub dropouts: DropoutSpec,
}

impl Default for OrchestratedSpec {
    fn default() -> Self {
        OrchestratedSpec {
            diurnal: DiurnalSpec {
                period_rounds: 5,
                trough_frac: 0.1,
            },
            interference: InterferenceSpec { reuse_factor: 0.6 },
            stragglers: StragglerSpec {
                probability: 0.3,
                slowdown: 4.0,
            },
            dropouts: DropoutSpec { probability: 0.1 },
        }
    }
}

/// Parameters of the `lossy_uplink` scenario: a link that loses
/// transfers, so every hop pays retry/backoff airtime — the regime
/// where the fault layer's wire pricing bites without any other
/// impairment in the way.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossyUplinkSpec {
    /// Per-attempt transfer loss probability, in `[0, 1)`.
    pub loss_prob: f64,
    /// Retransmission pricing for lost attempts.
    pub retry: RetryPolicy,
}

impl Default for LossyUplinkSpec {
    fn default() -> Self {
        LossyUplinkSpec {
            loss_prob: 0.15,
            retry: RetryPolicy::default(),
        }
    }
}

/// Parameters of the `chaos` scenario: every fault axis at once —
/// transfer loss, mid-compute crashes, round-start dropouts, AP outage
/// windows — on top of compute stragglers. The robustness stress case:
/// schemes must survive (deadlines, quorum aggregation, relay re-routes,
/// backup cohorts) and still converge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// The full fault model (loss, crashes, dropouts, AP outages).
    pub faults: FaultSpec,
    /// Compute straggler injection.
    pub stragglers: StragglerSpec,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            faults: FaultSpec {
                loss_prob: 0.1,
                crash_prob: 0.05,
                dropout_prob: 0.1,
                ap_outage: Some(ApOutageSpec {
                    probability: 0.02,
                    duration_rounds: 2,
                }),
                retry: RetryPolicy::default(),
            },
            stragglers: StragglerSpec {
                probability: 0.2,
                slowdown: 3.0,
            },
        }
    }
}

/// A free-form composition of every overlay axis at once.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompositeSpec {
    /// Optional mobility overlay.
    pub mobility: Option<MobilitySpec>,
    /// Optional diurnal bandwidth overlay.
    pub diurnal: Option<DiurnalSpec>,
    /// Optional congestion-spike overlay (mutually exclusive with
    /// `diurnal`; setting both is rejected at build).
    pub congestion: Option<CongestionSpec>,
    /// Optional straggler overlay.
    pub stragglers: Option<StragglerSpec>,
    /// Optional dropout overlay.
    pub dropouts: Option<DropoutSpec>,
    /// Optional co-channel interference overlay.
    #[serde(default)]
    pub interference: Option<InterferenceSpec>,
}

impl CompositeSpec {
    /// The everything-at-once stress composite used as the `composite`
    /// preset: mobility, congestion spikes, stragglers, dropouts and
    /// interference together.
    pub fn stress() -> Self {
        CompositeSpec {
            mobility: Some(MobilitySpec::default()),
            diurnal: None,
            congestion: Some(CongestionSpec::default()),
            stragglers: Some(StragglerSpec::default()),
            dropouts: Some(DropoutSpec { probability: 0.1 }),
            interference: Some(InterferenceSpec { reuse_factor: 0.3 }),
        }
    }
}

/// A named, serializable wireless environment shape.
///
/// `Static` (the default) reproduces the pre-trait composed model
/// byte-for-byte; every other variant overlays one time-varying axis;
/// `Composite` combines several.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Scenario {
    /// The always-the-same environment (fading still varies per round).
    #[default]
    Static,
    /// Random-waypoint mobility: path loss drifts as clients move.
    Mobility(MobilitySpec),
    /// Diurnal bandwidth: the band breathes with a day/night load cycle.
    Diurnal(DiurnalSpec),
    /// Congestion spikes: random rounds lose most of the band.
    Congested(CongestionSpec),
    /// Compute stragglers: random client-rounds run slowed down.
    Stragglers(StragglerSpec),
    /// Radio dropouts: random client-rounds are unreachable.
    Dropouts(DropoutSpec),
    /// Co-channel interference: concurrent transmitters degrade each
    /// other from SNR to SINR.
    Interference(InterferenceSpec),
    /// A permanently narrow band — the compression-study baseline.
    Narrowband(NarrowbandSpec),
    /// Narrow band plus co-channel interference — the contested airtime
    /// market where compressed payloads matter most.
    CrowdedCell(CrowdedCellSpec),
    /// Several APs / edge servers with mobility-driven handoffs.
    MultiAp(MultiApSpec),
    /// The multi-AP topology with the AP→aggregator backhaul priced —
    /// the environment the two-tier (hierarchical) aggregation studies
    /// run against.
    Hierarchical(MultiApSpec),
    /// The contested environment the adaptive cut-selection studies use
    /// (deep diurnal cycle + interference + stragglers).
    AdaptiveCut(AdaptiveCutSpec),
    /// The bundled diurnal-cellular trace replayed over the base model.
    TraceReplay(TraceReplaySpec),
    /// The orchestrated crowded cell: swinging congestion plus
    /// interference, stragglers and dropouts — what the orchestrator
    /// studies run against.
    Orchestrated(OrchestratedSpec),
    /// Several overlays at once.
    Composite(CompositeSpec),
    /// A lossy link: transfers drop and pay retry/backoff airtime.
    LossyUplink(LossyUplinkSpec),
    /// Every fault axis at once plus stragglers — the robustness stress
    /// case the fault-tolerance machinery is gated on.
    Chaos(ChaosSpec),
}

impl Scenario {
    /// The short name used in tables and file stems.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Static => "static",
            Scenario::Mobility(_) => "mobility",
            Scenario::Diurnal(_) => "diurnal",
            Scenario::Congested(_) => "congested",
            Scenario::Stragglers(_) => "stragglers",
            Scenario::Dropouts(_) => "dropouts",
            Scenario::Interference(_) => "interference",
            Scenario::Narrowband(_) => "narrowband",
            Scenario::CrowdedCell(_) => "crowded_cell",
            Scenario::MultiAp(_) => "multi_ap",
            Scenario::Hierarchical(_) => "hierarchical",
            Scenario::AdaptiveCut(_) => "adaptive_cut",
            Scenario::TraceReplay(_) => "trace_replay",
            Scenario::Orchestrated(_) => "orchestrated",
            Scenario::Composite(_) => "composite",
            Scenario::LossyUplink(_) => "lossy_uplink",
            Scenario::Chaos(_) => "chaos",
        }
    }

    /// The ready-made presets, in sweep order: the static baseline, the
    /// single-axis time-varying environments, the contested-spectrum
    /// environments (interference, multi-AP, the adaptive-cut stress
    /// case), and the everything-at-once composite.
    pub fn presets() -> Vec<Scenario> {
        vec![
            Scenario::Static,
            Scenario::Mobility(MobilitySpec::default()),
            Scenario::Diurnal(DiurnalSpec::default()),
            Scenario::Congested(CongestionSpec::default()),
            Scenario::Stragglers(StragglerSpec::default()),
            Scenario::Dropouts(DropoutSpec::default()),
            Scenario::Interference(InterferenceSpec::default()),
            Scenario::Narrowband(NarrowbandSpec::default()),
            Scenario::CrowdedCell(CrowdedCellSpec::default()),
            Scenario::MultiAp(MultiApSpec::default()),
            Scenario::Hierarchical(MultiApSpec::hierarchical()),
            Scenario::AdaptiveCut(AdaptiveCutSpec::default()),
            Scenario::TraceReplay(TraceReplaySpec::default()),
            Scenario::Orchestrated(OrchestratedSpec::default()),
            Scenario::Composite(CompositeSpec::stress()),
            Scenario::LossyUplink(LossyUplinkSpec::default()),
            Scenario::Chaos(ChaosSpec::default()),
        ]
    }

    /// Looks up a preset by [`Scenario::name`].
    pub fn preset(name: &str) -> Option<Scenario> {
        Scenario::presets().into_iter().find(|s| s.name() == name)
    }

    /// Builds the environment this scenario describes over a base model.
    /// `seed` drives the stochastic overlays (waypoints, spikes,
    /// stragglers, dropouts).
    ///
    /// # Errors
    ///
    /// Returns [`crate::WirelessError::Config`] for out-of-range
    /// parameters.
    pub fn build(&self, base: LatencyModel, seed: u64) -> Result<Box<dyn ChannelModel>> {
        match *self {
            Scenario::Static => Ok(Box::new(StaticEnvironment::new(base))),
            Scenario::Mobility(m) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .mobility(waypoints(m, seed)?)
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Diurnal(d) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Diurnal {
                        period_rounds: d.period_rounds,
                        trough_frac: d.trough_frac,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Congested(c) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Spikes {
                        probability: c.probability,
                        frac: c.frac,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Stragglers(s) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .stragglers(StragglerInjector {
                        probability: s.probability,
                        slowdown: s.slowdown,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Dropouts(d) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .dropouts(DropoutInjector {
                        probability: d.probability,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Interference(spec) => Ok(Box::new(
                StaticEnvironment::new(base).with_interference(spec)?,
            )),
            Scenario::Narrowband(n) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Scaled { frac: n.frac })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::CrowdedCell(c) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Scaled { frac: c.frac })
                    .interference(c.interference)
                    .seed(seed)
                    .build()?,
            )),
            Scenario::MultiAp(m) | Scenario::Hierarchical(m) => {
                let mut b = MultiApEnvironment::builder(base)
                    .line(m.aps, m.spacing_m)?
                    .handoff_kind(m.handoff)
                    .seed(seed);
                if let Some(spec) = m.mobility {
                    b = b.mobility(waypoints(spec, seed)?);
                }
                // Validate the reuse factor even when inactive, so a
                // typo'd negative/NaN value fails loudly instead of
                // silently disabling interference.
                let spec = InterferenceSpec {
                    reuse_factor: m.reuse_factor,
                };
                spec.validate()?;
                if spec.is_active() {
                    b = b.interference(spec);
                }
                if let Some(link) = m.backhaul {
                    b = b.backhaul(link);
                }
                Ok(Box::new(b.build()?))
            }
            Scenario::AdaptiveCut(a) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Diurnal {
                        period_rounds: a.diurnal.period_rounds,
                        trough_frac: a.diurnal.trough_frac,
                    })
                    .interference(a.interference)
                    .stragglers(StragglerInjector {
                        probability: a.stragglers.probability,
                        slowdown: a.stragglers.slowdown,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::TraceReplay(t) => Ok(Box::new(TraceEnvironment::new(
                base,
                ChannelTrace::diurnal_cellular(),
                t.resample,
                t.round_s,
            )?)),
            Scenario::Orchestrated(o) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Diurnal {
                        period_rounds: o.diurnal.period_rounds,
                        trough_frac: o.diurnal.trough_frac,
                    })
                    .interference(o.interference)
                    .stragglers(StragglerInjector {
                        probability: o.stragglers.probability,
                        slowdown: o.stragglers.slowdown,
                    })
                    .dropouts(DropoutInjector {
                        probability: o.dropouts.probability,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Composite(c) => {
                if c.diurnal.is_some() && c.congestion.is_some() {
                    return Err(crate::WirelessError::Config(
                        "composite scenario cannot combine diurnal and congestion \
                         bandwidth overlays — pick one"
                            .into(),
                    ));
                }
                let mut b = DynamicEnvironment::builder(base).seed(seed);
                if let Some(m) = c.mobility {
                    b = b.mobility(waypoints(m, seed)?);
                }
                if let Some(d) = c.diurnal {
                    b = b.bandwidth(BandwidthProfile::Diurnal {
                        period_rounds: d.period_rounds,
                        trough_frac: d.trough_frac,
                    });
                } else if let Some(s) = c.congestion {
                    b = b.bandwidth(BandwidthProfile::Spikes {
                        probability: s.probability,
                        frac: s.frac,
                    });
                }
                if let Some(s) = c.stragglers {
                    b = b.stragglers(StragglerInjector {
                        probability: s.probability,
                        slowdown: s.slowdown,
                    });
                }
                if let Some(d) = c.dropouts {
                    b = b.dropouts(DropoutInjector {
                        probability: d.probability,
                    });
                }
                if let Some(i) = c.interference {
                    b = b.interference(i);
                }
                Ok(Box::new(b.build()?))
            }
            Scenario::LossyUplink(l) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .faults(FaultSpec {
                        loss_prob: l.loss_prob,
                        retry: l.retry,
                        ..FaultSpec::default()
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Chaos(c) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .faults(c.faults)
                    .stragglers(StragglerInjector {
                        probability: c.stragglers.probability,
                        slowdown: c.stragglers.slowdown,
                    })
                    .seed(seed)
                    .build()?,
            )),
        }
    }
}

fn waypoints(m: MobilitySpec, seed: u64) -> Result<RandomWaypoint> {
    if m.min_m <= 0.0 || m.max_m < m.min_m {
        return Err(crate::WirelessError::Config(format!(
            "mobility annulus must satisfy 0 < min_m ≤ max_m, got [{}, {}]",
            m.min_m, m.max_m
        )));
    }
    if m.epoch_rounds == 0 {
        return Err(crate::WirelessError::Config(
            "mobility epoch_rounds must be ≥ 1".into(),
        ));
    }
    Ok(RandomWaypoint {
        min_m: m.min_m,
        max_m: m.max_m,
        epoch_rounds: m.epoch_rounds,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bytes, Hertz};

    fn base() -> LatencyModel {
        LatencyModel::builder().clients(3).seed(2).build().unwrap()
    }

    #[test]
    fn presets_cover_every_axis_once() {
        let presets = Scenario::presets();
        assert_eq!(presets.len(), 17);
        let names: Vec<&str> = presets.iter().map(Scenario::name).collect();
        assert_eq!(
            names,
            vec![
                "static",
                "mobility",
                "diurnal",
                "congested",
                "stragglers",
                "dropouts",
                "interference",
                "narrowband",
                "crowded_cell",
                "multi_ap",
                "hierarchical",
                "adaptive_cut",
                "trace_replay",
                "orchestrated",
                "composite",
                "lossy_uplink",
                "chaos"
            ]
        );
        for name in names {
            assert_eq!(Scenario::preset(name).unwrap().name(), name);
        }
        assert!(Scenario::preset("nope").is_none());
    }

    #[test]
    fn every_preset_builds_and_answers_queries() {
        for scenario in Scenario::presets() {
            let env = scenario.build(base(), 7).unwrap();
            let share = Hertz::from_mhz(1.0);
            for round in 0..4u64 {
                let t = env
                    .uplink_time(0, Bytes::new(10_000), round, share)
                    .unwrap();
                assert!(t.as_secs_f64() > 0.0, "{}", scenario.name());
                let cond = env.conditions(round).unwrap();
                assert_eq!(cond.clients.len(), 3, "{}", scenario.name());
            }
        }
    }

    #[test]
    fn static_build_is_static_environment() {
        let env = Scenario::Static.build(base(), 0).unwrap();
        assert_eq!(env.total_bandwidth(0), env.total_bandwidth(99));
        assert_eq!(env.distance(0, 0).unwrap(), env.distance(0, 99).unwrap());
    }

    #[test]
    fn composite_combines_axes() {
        let scenario = Scenario::Composite(CompositeSpec {
            mobility: Some(MobilitySpec::default()),
            diurnal: Some(DiurnalSpec {
                period_rounds: 10,
                trough_frac: 0.5,
            }),
            congestion: None,
            stragglers: Some(StragglerSpec {
                probability: 1.0,
                slowdown: 2.0,
            }),
            dropouts: None,
            interference: None,
        });
        let env = scenario.build(base(), 3).unwrap();
        assert!(env.total_bandwidth(5).as_hz() < env.total_bandwidth(0).as_hz());
        assert_ne!(env.distance(0, 0).unwrap(), env.distance(0, 7).unwrap());
        let slow = env.client_compute(0, 1_000_000_000, 0).unwrap();
        let fast = StaticEnvironment::new(base())
            .client_compute(0, 1_000_000_000, 0)
            .unwrap();
        assert!(slow.as_secs_f64() > fast.as_secs_f64());
    }

    #[test]
    fn scenario_serializes_and_round_trips() {
        for scenario in Scenario::presets() {
            let json = serde_json::to_string(&scenario).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(back, scenario, "{json}");
        }
        let composite = Scenario::Composite(CompositeSpec {
            stragglers: Some(StragglerSpec::default()),
            ..CompositeSpec::default()
        });
        let json = serde_json::to_string(&composite).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, composite);
    }

    #[test]
    fn mobility_parameters_validated_at_build() {
        let inverted = Scenario::Mobility(MobilitySpec {
            min_m: 200.0,
            max_m: 20.0,
            epoch_rounds: 10,
        });
        assert!(inverted.build(base(), 0).is_err());
        let zero_epoch = Scenario::Mobility(MobilitySpec {
            epoch_rounds: 0,
            ..MobilitySpec::default()
        });
        assert!(zero_epoch.build(base(), 0).is_err());
    }

    #[test]
    fn composite_rejects_conflicting_bandwidth_overlays() {
        let conflicting = Scenario::Composite(CompositeSpec {
            diurnal: Some(DiurnalSpec::default()),
            congestion: Some(CongestionSpec::default()),
            ..CompositeSpec::default()
        });
        assert!(conflicting.build(base(), 0).is_err());
    }

    #[test]
    fn bad_parameters_rejected_at_build() {
        let bad = Scenario::Stragglers(StragglerSpec {
            probability: 2.0,
            slowdown: 2.0,
        });
        assert!(bad.build(base(), 0).is_err());
        let bad = Scenario::Diurnal(DiurnalSpec {
            period_rounds: 5,
            trough_frac: -0.5,
        });
        assert!(bad.build(base(), 0).is_err());
        let bad = Scenario::Interference(InterferenceSpec { reuse_factor: 1.5 });
        assert!(bad.build(base(), 0).is_err());
        let bad = Scenario::MultiAp(MultiApSpec {
            aps: 0,
            ..MultiApSpec::default()
        });
        assert!(bad.build(base(), 0).is_err());
        // A negative/NaN reuse factor must fail loudly, not silently
        // disable interference (same knob as the interference preset).
        let bad = Scenario::MultiAp(MultiApSpec {
            reuse_factor: -0.5,
            ..MultiApSpec::default()
        });
        assert!(bad.build(base(), 0).is_err());
        let bad = Scenario::MultiAp(MultiApSpec {
            reuse_factor: f64::NAN,
            ..MultiApSpec::default()
        });
        assert!(bad.build(base(), 0).is_err());
    }

    #[test]
    fn interference_preset_pays_for_concurrency() {
        let env = Scenario::Interference(InterferenceSpec { reuse_factor: 0.8 })
            .build(base(), 1)
            .unwrap();
        let share = Hertz::from_mhz(1.0);
        let clean = env
            .uplink_time_among(0, Bytes::new(50_000), 0, share, &[])
            .unwrap();
        let contested = env
            .uplink_time_among(0, Bytes::new(50_000), 0, share, &[1, 2])
            .unwrap();
        assert!(contested.as_secs_f64() > clean.as_secs_f64());
    }

    #[test]
    fn multi_ap_preset_exposes_topology() {
        let env = Scenario::MultiAp(MultiApSpec::default())
            .build(base(), 2)
            .unwrap();
        assert_eq!(env.ap_count(), 3);
        let cond = env.conditions(0).unwrap();
        assert!(cond.clients.iter().all(|c| c.ap < 3));
        // With a greedy handoff policy, roaming clients change APs.
        let greedy = Scenario::MultiAp(MultiApSpec {
            handoff: HandoffKind::BestSinr,
            ..MultiApSpec::default()
        })
        .build(base(), 2)
        .unwrap();
        let mut moved = false;
        'outer: for c in 0..3 {
            let first = greedy.ap_of(c, 0).unwrap();
            for r in 1..60u64 {
                if greedy.ap_of(c, r).unwrap() != first {
                    moved = true;
                    break 'outer;
                }
            }
        }
        assert!(moved, "multi_ap roaming must produce handoffs");
    }

    #[test]
    fn hierarchical_preset_prices_the_backhaul() {
        let env = Scenario::Hierarchical(MultiApSpec::hierarchical())
            .build(base(), 2)
            .unwrap();
        assert_eq!(env.ap_count(), 3);
        for ap in 0..3 {
            let link = env.backhaul(ap).expect("hierarchical preset has backhaul");
            assert!(link.transfer_time(Bytes::new(1 << 20)).as_secs_f64() > 0.0);
        }
        // The plain multi_ap preset keeps the backhaul free (golden runs
        // must not change).
        let flat = Scenario::MultiAp(MultiApSpec::default())
            .build(base(), 2)
            .unwrap();
        assert!(flat.backhaul(0).is_none());
        // Bad link parameters fail at build.
        let bad = Scenario::Hierarchical(MultiApSpec {
            backhaul: Some(BackhaulLink {
                capacity_bps: -1.0,
                latency_s: 0.0,
            }),
            ..MultiApSpec::hierarchical()
        });
        assert!(bad.build(base(), 0).is_err());
    }

    #[test]
    fn narrowband_presets_shrink_the_band() {
        let narrow = Scenario::Narrowband(NarrowbandSpec { frac: 0.1 })
            .build(base(), 0)
            .unwrap();
        let nominal = StaticEnvironment::new(base());
        for round in 0..4u64 {
            let got = narrow.total_bandwidth(round).as_hz();
            let want = nominal.total_bandwidth(round).as_hz() * 0.1;
            assert!((got - want).abs() < 1e-6, "round {round}: {got} vs {want}");
        }
        let crowded = Scenario::CrowdedCell(CrowdedCellSpec::default())
            .build(base(), 0)
            .unwrap();
        assert!(crowded.total_bandwidth(0).as_hz() < nominal.total_bandwidth(0).as_hz());
        assert!(crowded.interference().unwrap().is_active());
        // Out-of-range fractions fail loudly.
        assert!(Scenario::Narrowband(NarrowbandSpec { frac: 0.0 })
            .build(base(), 0)
            .is_err());
        assert!(Scenario::CrowdedCell(CrowdedCellSpec {
            frac: 1.5,
            ..CrowdedCellSpec::default()
        })
        .build(base(), 0)
        .is_err());
    }

    #[test]
    fn trace_replay_preset_replays_the_bundled_trace() {
        let env = Scenario::TraceReplay(TraceReplaySpec::default())
            .build(base(), 0)
            .unwrap();
        let share = Hertz::from_mhz(1.0);
        // The diurnal wave makes congestion-peak rounds slower than the
        // off-peak start (round_s 30 s × 12 rounds = the 360 s trough).
        let off_peak = env
            .uplink_time(0, Bytes::new(100_000), 0, share)
            .unwrap()
            .as_secs_f64();
        let peak = env
            .uplink_time(0, Bytes::new(100_000), 12, share)
            .unwrap()
            .as_secs_f64();
        assert!(peak > off_peak, "peak {peak} vs off-peak {off_peak}");
        // Bad parameters fail at build.
        assert!(Scenario::TraceReplay(TraceReplaySpec {
            round_s: 0.0,
            ..TraceReplaySpec::default()
        })
        .build(base(), 0)
        .is_err());
    }

    #[test]
    fn orchestrated_preset_swings_every_axis() {
        let env = Scenario::Orchestrated(OrchestratedSpec::default())
            .build(base(), 3)
            .unwrap();
        assert!(env.interference().unwrap().is_active());
        // The short diurnal cycle bites within a handful of rounds.
        assert!(env.total_bandwidth(2).as_hz() < env.total_bandwidth(0).as_hz());
        // Dropouts are live somewhere in a long horizon.
        let mut dropped = false;
        for round in 0..60u64 {
            for c in 0..3 {
                dropped |= !env.is_available(c, round);
            }
        }
        assert!(dropped, "p=0.1 dropouts over 180 samples must fire");
        assert!(Scenario::Orchestrated(OrchestratedSpec {
            dropouts: DropoutSpec { probability: 2.0 },
            ..OrchestratedSpec::default()
        })
        .build(base(), 0)
        .is_err());
    }

    #[test]
    fn lossy_uplink_preset_prices_retries() {
        let env = Scenario::LossyUplink(LossyUplinkSpec::default())
            .build(base(), 5)
            .unwrap();
        // Losses fire somewhere over a long horizon, and the priced time
        // grows accordingly.
        let mut retried = false;
        for round in 0..20u64 {
            for c in 0..3 {
                let o = env.transfer_outcome(c, round, 0);
                assert_eq!(o, env.transfer_outcome(c, round, 0), "deterministic");
                retried |= o.attempts > 1;
            }
        }
        assert!(retried, "p=0.15 over 60 transfers must retry");
        // No other impairment: everyone is reachable, nobody crashes.
        assert!(env.is_available(0, 0));
        assert_eq!(env.crash_point(0, 0), None);
        // Bad parameters fail at build.
        assert!(Scenario::LossyUplink(LossyUplinkSpec {
            loss_prob: 1.0,
            ..LossyUplinkSpec::default()
        })
        .build(base(), 0)
        .is_err());
    }

    #[test]
    fn chaos_preset_fires_every_fault_axis() {
        let env = Scenario::Chaos(ChaosSpec::default())
            .build(base(), 3)
            .unwrap();
        let (mut lost, mut crashed, mut dropped, mut outage) = (false, false, false, false);
        for round in 0..300u64 {
            outage |= !env.ap_online(0, round);
            for c in 0..3 {
                lost |= env.transfer_outcome(c, round, 0).attempts > 1;
                crashed |= env.crash_point(c, round).is_some();
                dropped |= !env.is_available(c, round);
            }
        }
        assert!(lost, "chaos must lose transfers");
        assert!(crashed, "chaos must crash clients");
        assert!(dropped, "chaos must drop clients");
        assert!(outage, "chaos must take the AP dark");
        // Stragglers ride along.
        let slow = env.client_compute(0, 1_000_000_000, 0).unwrap();
        let fast = StaticEnvironment::new(base())
            .client_compute(0, 1_000_000_000, 0)
            .unwrap();
        assert!(slow.as_secs_f64() >= fast.as_secs_f64());
        assert!(Scenario::Chaos(ChaosSpec {
            faults: FaultSpec {
                crash_prob: 2.0,
                ..FaultSpec::default()
            },
            ..ChaosSpec::default()
        })
        .build(base(), 0)
        .is_err());
    }

    #[test]
    fn adaptive_cut_preset_is_contested() {
        let env = Scenario::AdaptiveCut(AdaptiveCutSpec::default())
            .build(base(), 3)
            .unwrap();
        assert!(env.interference().unwrap().is_active());
        // The diurnal trough bites mid-period.
        assert!(env.total_bandwidth(3).as_hz() < env.total_bandwidth(0).as_hz());
    }
}
