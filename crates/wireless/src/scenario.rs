//! Serde-loadable wireless scenarios.
//!
//! A [`Scenario`] names a wireless environment shape — static, or one of
//! the time-varying overlays from [`crate::environment`] — with its
//! parameters, serializes cleanly inside experiment configs, and builds
//! the matching [`ChannelModel`] over any base [`LatencyModel`].
//!
//! [`Scenario::presets`] lists the ready-made presets the scenario-sweep
//! tooling iterates: `static`, `mobility`, `diurnal`, `congested`,
//! `stragglers`, `dropouts`.

use crate::environment::{
    BandwidthProfile, ChannelModel, DropoutInjector, DynamicEnvironment, StaticEnvironment,
    StragglerInjector,
};
use crate::latency::LatencyModel;
use crate::mobility::RandomWaypoint;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Parameters of the `mobility` scenario (random-waypoint drift).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilitySpec {
    /// Closest approach to the AP, meters.
    pub min_m: f64,
    /// Farthest excursion, meters.
    pub max_m: f64,
    /// Rounds spent travelling between consecutive waypoints.
    pub epoch_rounds: u64,
}

impl Default for MobilitySpec {
    fn default() -> Self {
        MobilitySpec {
            min_m: 20.0,
            max_m: 200.0,
            epoch_rounds: 10,
        }
    }
}

/// Parameters of the `diurnal` scenario (smooth bandwidth load cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSpec {
    /// Rounds per full day/night cycle.
    pub period_rounds: u64,
    /// Fraction of the band left at peak congestion, in `(0, 1]`.
    pub trough_frac: f64,
}

impl Default for DiurnalSpec {
    fn default() -> Self {
        DiurnalSpec {
            period_rounds: 20,
            trough_frac: 0.3,
        }
    }
}

/// Parameters of the `congested` scenario (random bandwidth spikes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionSpec {
    /// Per-round spike probability, in `[0, 1]`.
    pub probability: f64,
    /// Fraction of the band left during a spike, in `(0, 1]`.
    pub frac: f64,
}

impl Default for CongestionSpec {
    fn default() -> Self {
        CongestionSpec {
            probability: 0.3,
            frac: 0.25,
        }
    }
}

/// Parameters of the `stragglers` scenario (per-round compute slowdowns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerSpec {
    /// Per-client-round straggle probability, in `[0, 1]`.
    pub probability: f64,
    /// Compute-rate divisor while straggling (≥ 1).
    pub slowdown: f64,
}

impl Default for StragglerSpec {
    fn default() -> Self {
        StragglerSpec {
            probability: 0.25,
            slowdown: 4.0,
        }
    }
}

/// Parameters of the `dropouts` scenario (per-round radio dropouts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropoutSpec {
    /// Per-client-round dropout probability, in `[0, 1]`.
    pub probability: f64,
}

impl Default for DropoutSpec {
    fn default() -> Self {
        DropoutSpec { probability: 0.2 }
    }
}

/// A free-form composition of every overlay axis at once.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompositeSpec {
    /// Optional mobility overlay.
    pub mobility: Option<MobilitySpec>,
    /// Optional diurnal bandwidth overlay.
    pub diurnal: Option<DiurnalSpec>,
    /// Optional congestion-spike overlay (mutually exclusive with
    /// `diurnal`; setting both is rejected at build).
    pub congestion: Option<CongestionSpec>,
    /// Optional straggler overlay.
    pub stragglers: Option<StragglerSpec>,
    /// Optional dropout overlay.
    pub dropouts: Option<DropoutSpec>,
}

/// A named, serializable wireless environment shape.
///
/// `Static` (the default) reproduces the pre-trait composed model
/// byte-for-byte; every other variant overlays one time-varying axis;
/// `Composite` combines several.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Scenario {
    /// The always-the-same environment (fading still varies per round).
    #[default]
    Static,
    /// Random-waypoint mobility: path loss drifts as clients move.
    Mobility(MobilitySpec),
    /// Diurnal bandwidth: the band breathes with a day/night load cycle.
    Diurnal(DiurnalSpec),
    /// Congestion spikes: random rounds lose most of the band.
    Congested(CongestionSpec),
    /// Compute stragglers: random client-rounds run slowed down.
    Stragglers(StragglerSpec),
    /// Radio dropouts: random client-rounds are unreachable.
    Dropouts(DropoutSpec),
    /// Several overlays at once.
    Composite(CompositeSpec),
}

impl Scenario {
    /// The short name used in tables and file stems.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Static => "static",
            Scenario::Mobility(_) => "mobility",
            Scenario::Diurnal(_) => "diurnal",
            Scenario::Congested(_) => "congested",
            Scenario::Stragglers(_) => "stragglers",
            Scenario::Dropouts(_) => "dropouts",
            Scenario::Composite(_) => "composite",
        }
    }

    /// The ready-made presets, in sweep order: the static baseline plus
    /// five time-varying environments at default parameters.
    pub fn presets() -> Vec<Scenario> {
        vec![
            Scenario::Static,
            Scenario::Mobility(MobilitySpec::default()),
            Scenario::Diurnal(DiurnalSpec::default()),
            Scenario::Congested(CongestionSpec::default()),
            Scenario::Stragglers(StragglerSpec::default()),
            Scenario::Dropouts(DropoutSpec::default()),
        ]
    }

    /// Looks up a preset by [`Scenario::name`].
    pub fn preset(name: &str) -> Option<Scenario> {
        Scenario::presets().into_iter().find(|s| s.name() == name)
    }

    /// Builds the environment this scenario describes over a base model.
    /// `seed` drives the stochastic overlays (waypoints, spikes,
    /// stragglers, dropouts).
    ///
    /// # Errors
    ///
    /// Returns [`crate::WirelessError::Config`] for out-of-range
    /// parameters.
    pub fn build(&self, base: LatencyModel, seed: u64) -> Result<Box<dyn ChannelModel>> {
        match *self {
            Scenario::Static => Ok(Box::new(StaticEnvironment::new(base))),
            Scenario::Mobility(m) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .mobility(waypoints(m, seed)?)
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Diurnal(d) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Diurnal {
                        period_rounds: d.period_rounds,
                        trough_frac: d.trough_frac,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Congested(c) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .bandwidth(BandwidthProfile::Spikes {
                        probability: c.probability,
                        frac: c.frac,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Stragglers(s) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .stragglers(StragglerInjector {
                        probability: s.probability,
                        slowdown: s.slowdown,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Dropouts(d) => Ok(Box::new(
                DynamicEnvironment::builder(base)
                    .dropouts(DropoutInjector {
                        probability: d.probability,
                    })
                    .seed(seed)
                    .build()?,
            )),
            Scenario::Composite(c) => {
                if c.diurnal.is_some() && c.congestion.is_some() {
                    return Err(crate::WirelessError::Config(
                        "composite scenario cannot combine diurnal and congestion \
                         bandwidth overlays — pick one"
                            .into(),
                    ));
                }
                let mut b = DynamicEnvironment::builder(base).seed(seed);
                if let Some(m) = c.mobility {
                    b = b.mobility(waypoints(m, seed)?);
                }
                if let Some(d) = c.diurnal {
                    b = b.bandwidth(BandwidthProfile::Diurnal {
                        period_rounds: d.period_rounds,
                        trough_frac: d.trough_frac,
                    });
                } else if let Some(s) = c.congestion {
                    b = b.bandwidth(BandwidthProfile::Spikes {
                        probability: s.probability,
                        frac: s.frac,
                    });
                }
                if let Some(s) = c.stragglers {
                    b = b.stragglers(StragglerInjector {
                        probability: s.probability,
                        slowdown: s.slowdown,
                    });
                }
                if let Some(d) = c.dropouts {
                    b = b.dropouts(DropoutInjector {
                        probability: d.probability,
                    });
                }
                Ok(Box::new(b.build()?))
            }
        }
    }
}

fn waypoints(m: MobilitySpec, seed: u64) -> Result<RandomWaypoint> {
    if m.min_m <= 0.0 || m.max_m < m.min_m {
        return Err(crate::WirelessError::Config(format!(
            "mobility annulus must satisfy 0 < min_m ≤ max_m, got [{}, {}]",
            m.min_m, m.max_m
        )));
    }
    if m.epoch_rounds == 0 {
        return Err(crate::WirelessError::Config(
            "mobility epoch_rounds must be ≥ 1".into(),
        ));
    }
    Ok(RandomWaypoint {
        min_m: m.min_m,
        max_m: m.max_m,
        epoch_rounds: m.epoch_rounds,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Bytes, Hertz};

    fn base() -> LatencyModel {
        LatencyModel::builder().clients(3).seed(2).build().unwrap()
    }

    #[test]
    fn presets_cover_every_axis_once() {
        let presets = Scenario::presets();
        assert_eq!(presets.len(), 6);
        let names: Vec<&str> = presets.iter().map(Scenario::name).collect();
        assert_eq!(
            names,
            vec![
                "static",
                "mobility",
                "diurnal",
                "congested",
                "stragglers",
                "dropouts"
            ]
        );
        for name in names {
            assert_eq!(Scenario::preset(name).unwrap().name(), name);
        }
        assert!(Scenario::preset("nope").is_none());
    }

    #[test]
    fn every_preset_builds_and_answers_queries() {
        for scenario in Scenario::presets() {
            let env = scenario.build(base(), 7).unwrap();
            let share = Hertz::from_mhz(1.0);
            for round in 0..4u64 {
                let t = env
                    .uplink_time(0, Bytes::new(10_000), round, share)
                    .unwrap();
                assert!(t.as_secs_f64() > 0.0, "{}", scenario.name());
                let cond = env.conditions(round).unwrap();
                assert_eq!(cond.clients.len(), 3, "{}", scenario.name());
            }
        }
    }

    #[test]
    fn static_build_is_static_environment() {
        let env = Scenario::Static.build(base(), 0).unwrap();
        assert_eq!(env.total_bandwidth(0), env.total_bandwidth(99));
        assert_eq!(env.distance(0, 0).unwrap(), env.distance(0, 99).unwrap());
    }

    #[test]
    fn composite_combines_axes() {
        let scenario = Scenario::Composite(CompositeSpec {
            mobility: Some(MobilitySpec::default()),
            diurnal: Some(DiurnalSpec {
                period_rounds: 10,
                trough_frac: 0.5,
            }),
            congestion: None,
            stragglers: Some(StragglerSpec {
                probability: 1.0,
                slowdown: 2.0,
            }),
            dropouts: None,
        });
        let env = scenario.build(base(), 3).unwrap();
        assert!(env.total_bandwidth(5).as_hz() < env.total_bandwidth(0).as_hz());
        assert_ne!(env.distance(0, 0).unwrap(), env.distance(0, 7).unwrap());
        let slow = env.client_compute(0, 1_000_000_000, 0).unwrap();
        let fast = StaticEnvironment::new(base())
            .client_compute(0, 1_000_000_000, 0)
            .unwrap();
        assert!(slow.as_secs_f64() > fast.as_secs_f64());
    }

    #[test]
    fn scenario_serializes_and_round_trips() {
        for scenario in Scenario::presets() {
            let json = serde_json::to_string(&scenario).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(back, scenario, "{json}");
        }
        let composite = Scenario::Composite(CompositeSpec {
            stragglers: Some(StragglerSpec::default()),
            ..CompositeSpec::default()
        });
        let json = serde_json::to_string(&composite).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, composite);
    }

    #[test]
    fn mobility_parameters_validated_at_build() {
        let inverted = Scenario::Mobility(MobilitySpec {
            min_m: 200.0,
            max_m: 20.0,
            epoch_rounds: 10,
        });
        assert!(inverted.build(base(), 0).is_err());
        let zero_epoch = Scenario::Mobility(MobilitySpec {
            epoch_rounds: 0,
            ..MobilitySpec::default()
        });
        assert!(zero_epoch.build(base(), 0).is_err());
    }

    #[test]
    fn composite_rejects_conflicting_bandwidth_overlays() {
        let conflicting = Scenario::Composite(CompositeSpec {
            diurnal: Some(DiurnalSpec::default()),
            congestion: Some(CongestionSpec::default()),
            ..CompositeSpec::default()
        });
        assert!(conflicting.build(base(), 0).is_err());
    }

    #[test]
    fn bad_parameters_rejected_at_build() {
        let bad = Scenario::Stragglers(StragglerSpec {
            probability: 2.0,
            slowdown: 2.0,
        });
        assert!(bad.build(base(), 0).is_err());
        let bad = Scenario::Diurnal(DiurnalSpec {
            period_rounds: 5,
            trough_frac: -0.5,
        });
        assert!(bad.build(base(), 0).is_err());
    }
}
