//! Trace-driven channels: replay measured per-client time series.
//!
//! A [`ChannelTrace`] is a serde-loaded set of per-client samples —
//! `(time_s, bandwidth_bps, rtt_s, available)` — and a
//! [`TraceEnvironment`] replays it as a [`ChannelModel`]: round `r` maps
//! to trace time `r × round_s` (wrapping cyclically past the end of the
//! trace), and each client's transmissions are charged against its
//! *measured* link capacity instead of the analytic SNR link budget.
//!
//! Semantics:
//!
//! * `bandwidth_bps` is the client's full-band link throughput at that
//!   instant. A transmission over a `share` of the system band gets the
//!   proportional slice: `rate = bandwidth_bps × share / total_band`.
//!   [`ChannelModel::total_bandwidth`] stays the base model's nominal
//!   band, so dedicated-share math (`B/N`) is unchanged.
//! * `rtt_s` (optional, default 0) is a per-transfer latency floor added
//!   to every uplink/downlink.
//! * `available` (optional, default `true`) marks radio coverage;
//!   resampled with hold semantics always.
//! * Compute rates, distances, fading gains, power and the edge server
//!   come from the wrapped [`LatencyModel`] — the trace replaces the
//!   *radio link* only.
//!
//! Between samples, [`Resample::Hold`] keeps the previous sample's
//! values and [`Resample::Interpolate`] linearly interpolates the
//! numeric fields. Malformed traces (empty series, non-monotonic
//! timestamps, NaN/zero/negative bandwidths) are rejected at load time
//! with field-path error messages — see [`ChannelTrace::validate`].
//!
//! The crate bundles a six-client diurnal-cellular fixture
//! ([`ChannelTrace::diurnal_cellular`]) with phase-shifted congestion
//! waves and deep-trough dropouts, used by the `trace_replay` scenario
//! preset.

use crate::energy::PowerProfile;
use crate::environment::ChannelModel;
use crate::latency::LatencyModel;
use crate::server::EdgeServer;
use crate::units::{Bytes, FlopsRate, Hertz, Meters, Seconds};
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// One measurement instant of one client's link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Seconds since the start of the trace. Must be strictly
    /// increasing within a series.
    pub time_s: f64,
    /// Measured full-band link throughput, bits per second. Must be
    /// finite and positive.
    pub bandwidth_bps: f64,
    /// Per-transfer round-trip latency floor, seconds (default 0).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rtt_s: Option<f64>,
    /// Whether the client has radio coverage (default `true`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub available: Option<bool>,
}

/// One client's measurement series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientTrace {
    /// The samples, in strictly increasing `time_s` order.
    pub samples: Vec<TraceSample>,
}

/// A set of per-client link traces, loadable from JSON.
///
/// Clients beyond the trace's series count reuse series modulo its
/// length, so a short trace can drive a larger fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelTrace {
    /// Per-client series; client `c` replays `clients[c % len]`.
    pub clients: Vec<ClientTrace>,
}

/// The bundled diurnal-cellular fixture, embedded at compile time.
const DIURNAL_CELLULAR_JSON: &str = include_str!("traces/diurnal_cellular.json");

impl ChannelTrace {
    /// Parses and validates a trace from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for parse failures or any
    /// malformed field (with its path — see [`ChannelTrace::validate`]).
    pub fn from_json(text: &str) -> Result<Self> {
        let trace: ChannelTrace = serde_json::from_str(text)
            .map_err(|e| WirelessError::Config(format!("trace parse error: {e}")))?;
        trace.validate()?;
        Ok(trace)
    }

    /// The bundled six-client diurnal-cellular trace: phase-shifted
    /// 12-minute congestion waves between 2 and 16 Mb/s, rising RTTs in
    /// the troughs, and deep-trough dropouts on two clients.
    pub fn diurnal_cellular() -> Self {
        ChannelTrace::from_json(DIURNAL_CELLULAR_JSON).expect("bundled trace is valid")
    }

    /// Validates the trace: at least one series, every series non-empty
    /// with strictly increasing timestamps, every bandwidth finite and
    /// positive, every RTT finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] naming the offending field by
    /// path, e.g. `clients[2].samples[5].bandwidth_bps`.
    pub fn validate(&self) -> Result<()> {
        if self.clients.is_empty() {
            return Err(WirelessError::Config(
                "clients: trace holds no client series".into(),
            ));
        }
        for (i, series) in self.clients.iter().enumerate() {
            if series.samples.is_empty() {
                return Err(WirelessError::Config(format!(
                    "clients[{i}].samples: series is empty"
                )));
            }
            for (j, s) in series.samples.iter().enumerate() {
                if !s.time_s.is_finite() || s.time_s < 0.0 {
                    return Err(WirelessError::Config(format!(
                        "clients[{i}].samples[{j}].time_s: must be finite and ≥ 0, got {}",
                        s.time_s
                    )));
                }
                if j > 0 {
                    let prev = series.samples[j - 1].time_s;
                    if s.time_s <= prev {
                        return Err(WirelessError::Config(format!(
                            "clients[{i}].samples[{j}].time_s: timestamps must be strictly \
                             increasing (prev {prev}, got {})",
                            s.time_s
                        )));
                    }
                }
                if !s.bandwidth_bps.is_finite() || s.bandwidth_bps <= 0.0 {
                    return Err(WirelessError::Config(format!(
                        "clients[{i}].samples[{j}].bandwidth_bps: must be finite and > 0, got {}",
                        s.bandwidth_bps
                    )));
                }
                if let Some(rtt) = s.rtt_s {
                    if !rtt.is_finite() || rtt < 0.0 {
                        return Err(WirelessError::Config(format!(
                            "clients[{i}].samples[{j}].rtt_s: must be finite and ≥ 0, got {rtt}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of client series.
    pub fn series_count(&self) -> usize {
        self.clients.len()
    }
}

/// How trace values between samples are reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Resample {
    /// Step function: each sample's values hold until the next sample.
    #[default]
    Hold,
    /// Linear interpolation of the numeric fields (bandwidth, RTT);
    /// availability always holds.
    Interpolate,
}

/// The reconstructed link state of one client at one trace instant.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LinkState {
    bandwidth_bps: f64,
    rtt_s: f64,
    available: bool,
}

/// A [`ChannelModel`] that replays a [`ChannelTrace`] over a wrapped
/// [`LatencyModel`] (see the module docs for the semantics).
#[derive(Debug, Clone)]
pub struct TraceEnvironment {
    base: LatencyModel,
    trace: ChannelTrace,
    resample: Resample,
    round_s: f64,
}

impl TraceEnvironment {
    /// Builds a trace-driven environment: round `r` reads the trace at
    /// `r × round_s` seconds, wrapping cyclically.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for an invalid trace or a
    /// non-positive `round_s`.
    pub fn new(
        base: LatencyModel,
        trace: ChannelTrace,
        resample: Resample,
        round_s: f64,
    ) -> Result<Self> {
        trace.validate()?;
        if !round_s.is_finite() || round_s <= 0.0 {
            return Err(WirelessError::Config(format!(
                "round_s: must be finite and > 0, got {round_s}"
            )));
        }
        Ok(TraceEnvironment {
            base,
            trace,
            resample,
            round_s,
        })
    }

    /// The wrapped analytic model.
    pub fn base(&self) -> &LatencyModel {
        &self.base
    }

    /// The replayed trace.
    pub fn trace(&self) -> &ChannelTrace {
        &self.trace
    }

    fn check_client(&self, client: usize) -> Result<()> {
        if client >= self.base.client_count() {
            return Err(WirelessError::UnknownClient {
                client,
                clients: self.base.client_count(),
            });
        }
        Ok(())
    }

    /// The reconstructed link state of `client` at round `round`.
    fn link_state(&self, client: usize, round: u64) -> LinkState {
        let series = &self.trace.clients[client % self.trace.clients.len()].samples;
        let first = series[0].time_s;
        let last = series[series.len() - 1].time_s;
        let span = last - first;
        let t = round as f64 * self.round_s;
        // Cyclic replay: times inside [first, last] read the trace
        // directly; anything outside wraps with period `span`. A
        // single-sample series is a constant.
        let t = if span <= 0.0 {
            first
        } else if t >= first && t <= last {
            t
        } else {
            first + (t - first).rem_euclid(span)
        };
        // Index of the last sample at or before t.
        let idx = series
            .partition_point(|s| s.time_s <= t)
            .saturating_sub(1)
            .min(series.len() - 1);
        let cur = &series[idx];
        let state_of = |s: &TraceSample| LinkState {
            bandwidth_bps: s.bandwidth_bps,
            rtt_s: s.rtt_s.unwrap_or(0.0),
            available: s.available.unwrap_or(true),
        };
        match self.resample {
            Resample::Hold => state_of(cur),
            Resample::Interpolate => {
                if idx + 1 >= series.len() {
                    return state_of(cur);
                }
                let next = &series[idx + 1];
                let dt = next.time_s - cur.time_s;
                let w = if dt > 0.0 { (t - cur.time_s) / dt } else { 0.0 };
                let a = state_of(cur);
                let b = state_of(next);
                LinkState {
                    bandwidth_bps: a.bandwidth_bps + w * (b.bandwidth_bps - a.bandwidth_bps),
                    rtt_s: a.rtt_s + w * (b.rtt_s - a.rtt_s),
                    // Availability is categorical: always hold.
                    available: a.available,
                }
            }
        }
    }

    /// The traced rate of `client` over `share` of the system band.
    fn shared_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64> {
        self.check_client(client)?;
        let total = self.base.total_bandwidth().as_hz();
        let frac = share.as_hz() / total;
        if !frac.is_finite() || frac <= 0.0 {
            return Err(WirelessError::Config(format!(
                "bandwidth share must be > 0, got {} Hz of {} Hz",
                share.as_hz(),
                total
            )));
        }
        Ok(self.link_state(client, round).bandwidth_bps * frac)
    }

    fn transfer_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let rate = self.shared_rate_bps(client, round, share)?;
        let rtt = self.link_state(client, round).rtt_s;
        Ok(Seconds::new(payload.as_bits() as f64 / rate + rtt))
    }
}

impl ChannelModel for TraceEnvironment {
    fn client_count(&self) -> usize {
        self.base.client_count()
    }

    fn total_bandwidth(&self, _round: u64) -> Hertz {
        self.base.total_bandwidth()
    }

    fn server(&self) -> &EdgeServer {
        self.base.server()
    }

    fn power(&self) -> &PowerProfile {
        self.base.power()
    }

    fn distance(&self, client: usize, _round: u64) -> Result<Meters> {
        self.base.distance(client)
    }

    fn device_rate(&self, client: usize, _round: u64) -> Result<FlopsRate> {
        Ok(self.base.device(client)?.rate())
    }

    fn uplink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        self.transfer_time(client, payload, round, share)
    }

    fn downlink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        self.transfer_time(client, payload, round, share)
    }

    fn uplink_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64> {
        self.shared_rate_bps(client, round, share)
    }

    fn uplink_gain(&self, client: usize, round: u64) -> Result<f64> {
        self.base.distance(client)?; // index check
        Ok(self.base.uplink_gain(client, round))
    }

    fn client_compute(&self, client: usize, flops: u64, _round: u64) -> Result<Seconds> {
        self.base.client_compute(client, flops)
    }

    fn server_compute(&self, flops: u64) -> Seconds {
        self.base.server_compute(flops)
    }

    fn is_available(&self, client: usize, round: u64) -> bool {
        if client >= self.base.client_count() {
            return false;
        }
        self.link_state(client, round).available
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(clients: usize) -> LatencyModel {
        LatencyModel::builder()
            .clients(clients)
            .seed(2)
            .fading(false)
            .build()
            .unwrap()
    }

    fn two_point_trace() -> ChannelTrace {
        ChannelTrace {
            clients: vec![ClientTrace {
                samples: vec![
                    TraceSample {
                        time_s: 0.0,
                        bandwidth_bps: 1.0e6,
                        rtt_s: Some(0.01),
                        available: None,
                    },
                    TraceSample {
                        time_s: 100.0,
                        bandwidth_bps: 3.0e6,
                        rtt_s: Some(0.03),
                        available: Some(false),
                    },
                ],
            }],
        }
    }

    #[test]
    fn bundled_fixture_loads_and_validates() {
        let trace = ChannelTrace::diurnal_cellular();
        assert_eq!(trace.series_count(), 6);
        assert!(trace.clients.iter().all(|c| c.samples.len() == 13));
        // At least one dropout sample is bundled.
        assert!(trace
            .clients
            .iter()
            .flat_map(|c| &c.samples)
            .any(|s| s.available == Some(false)));
    }

    #[test]
    fn validation_rejects_malformed_fields_with_paths() {
        let cases: &[(&str, &str)] = &[
            (r#"{"clients": []}"#, "clients:"),
            (r#"{"clients": [{"samples": []}]}"#, "clients[0].samples:"),
            (
                r#"{"clients": [{"samples": [{"time_s": 0, "bandwidth_bps": 0}]}]}"#,
                "clients[0].samples[0].bandwidth_bps",
            ),
            (
                r#"{"clients": [{"samples": [{"time_s": 0, "bandwidth_bps": -5}]}]}"#,
                "clients[0].samples[0].bandwidth_bps",
            ),
            (
                r#"{"clients": [{"samples": [
                    {"time_s": 0, "bandwidth_bps": 1e6},
                    {"time_s": 0, "bandwidth_bps": 1e6}]}]}"#,
                "clients[0].samples[1].time_s",
            ),
            (
                r#"{"clients": [{"samples": [
                    {"time_s": 5, "bandwidth_bps": 1e6},
                    {"time_s": 2, "bandwidth_bps": 1e6}]}]}"#,
                "clients[0].samples[1].time_s",
            ),
            (
                r#"{"clients": [{"samples": [{"time_s": 0, "bandwidth_bps": 1e6, "rtt_s": -1}]}]}"#,
                "clients[0].samples[0].rtt_s",
            ),
            (
                r#"{"clients": [{"samples": [{"time_s": -3, "bandwidth_bps": 1e6}]}]}"#,
                "clients[0].samples[0].time_s",
            ),
        ];
        for (json, path) in cases {
            let err = ChannelTrace::from_json(json).unwrap_err().to_string();
            assert!(err.contains(path), "{json} should fail at {path}: {err}");
        }
        // NaN cannot appear in JSON, but programmatic traces can carry it.
        let mut trace = two_point_trace();
        trace.clients[0].samples[0].bandwidth_bps = f64::NAN;
        let err = trace.validate().unwrap_err().to_string();
        assert!(err.contains("clients[0].samples[0].bandwidth_bps"), "{err}");
    }

    #[test]
    fn hold_steps_and_interpolate_blends() {
        // round_s = 10 → rounds 0..=10 span the 100 s trace.
        let hold = TraceEnvironment::new(base(1), two_point_trace(), Resample::Hold, 10.0).unwrap();
        let lerp =
            TraceEnvironment::new(base(1), two_point_trace(), Resample::Interpolate, 10.0).unwrap();
        let share = hold.total_bandwidth(0);
        // Hold: rounds 0..10 read the first sample.
        assert_eq!(hold.uplink_rate_bps(0, 0, share).unwrap(), 1.0e6);
        assert_eq!(hold.uplink_rate_bps(0, 9, share).unwrap(), 1.0e6);
        // Interpolate: halfway between samples at round 5.
        assert!((lerp.uplink_rate_bps(0, 5, share).unwrap() - 2.0e6).abs() < 1e-6);
        // Availability always holds: the first sample (available) rules
        // until the second sample's instant.
        assert!(lerp.is_available(0, 5));
        assert!(!lerp.is_available(0, 10));
    }

    #[test]
    fn replay_wraps_cyclically() {
        let env = TraceEnvironment::new(base(1), two_point_trace(), Resample::Hold, 10.0).unwrap();
        let share = env.total_bandwidth(0);
        // Round 10 hits the last sample; round 11 wraps to 10 s past the
        // start — back on the first sample.
        assert_eq!(env.uplink_rate_bps(0, 10, share).unwrap(), 3.0e6);
        assert_eq!(env.uplink_rate_bps(0, 11, share).unwrap(), 1.0e6);
        assert!(env.is_available(0, 11));
    }

    #[test]
    fn transfer_time_is_bits_over_shared_rate_plus_rtt() {
        let env = TraceEnvironment::new(base(2), two_point_trace(), Resample::Hold, 10.0).unwrap();
        let total = env.total_bandwidth(0);
        let payload = Bytes::new(125_000); // 1e6 bits
        let full = env.uplink_time(0, payload, 0, total).unwrap();
        assert!((full.as_secs_f64() - (1.0 + 0.01)).abs() < 1e-9);
        let half = env.uplink_time(0, payload, 0, total.fraction(0.5)).unwrap();
        assert!((half.as_secs_f64() - (2.0 + 0.01)).abs() < 1e-9);
        // Symmetric capacity: downlink is charged identically.
        assert_eq!(env.downlink_time(0, payload, 0, total).unwrap(), full);
        // Client 1 reuses series 0 (modulo wrap).
        assert_eq!(env.uplink_time(1, payload, 0, total).unwrap(), full);
    }

    #[test]
    fn compute_and_identity_queries_delegate_to_base() {
        let model = base(2);
        let env =
            TraceEnvironment::new(model.clone(), two_point_trace(), Resample::Hold, 10.0).unwrap();
        assert_eq!(
            env.client_compute(0, 1_000_000, 3).unwrap(),
            model.client_compute(0, 1_000_000).unwrap()
        );
        assert_eq!(env.server_compute(9_000), model.server_compute(9_000));
        assert_eq!(env.distance(1, 0).unwrap(), model.distance(1).unwrap());
        assert_eq!(env.total_bandwidth(7), model.total_bandwidth());
        let cond = env.conditions(0).unwrap();
        assert_eq!(cond.clients.len(), 2);
    }

    #[test]
    fn constructor_and_query_errors() {
        assert!(TraceEnvironment::new(base(1), two_point_trace(), Resample::Hold, 0.0).is_err());
        assert!(
            TraceEnvironment::new(base(1), two_point_trace(), Resample::Hold, f64::NAN).is_err()
        );
        let bad = ChannelTrace {
            clients: vec![ClientTrace { samples: vec![] }],
        };
        assert!(TraceEnvironment::new(base(1), bad, Resample::Hold, 10.0).is_err());
        let env = TraceEnvironment::new(base(1), two_point_trace(), Resample::Hold, 10.0).unwrap();
        assert!(env
            .uplink_time(5, Bytes::new(10), 0, env.total_bandwidth(0))
            .is_err());
        assert!(env
            .uplink_time(0, Bytes::new(10), 0, Hertz::new(0.0))
            .is_err());
        assert!(!env.is_available(5, 0));
    }

    #[test]
    fn serde_round_trips() {
        let trace = ChannelTrace::diurnal_cellular();
        let json = serde_json::to_string(&trace).unwrap();
        let back = ChannelTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
    }
}
