//! Multi-AP environments: several access points / edge servers, mobility
//! driven re-association, and co-channel interference across the fleet.
//!
//! [`MultiApEnvironment`] generalizes the single-AP world of
//! [`crate::environment::StaticEnvironment`]:
//!
//! * **Geometry** — APs sit at fixed 2D positions; each client keeps the
//!   deterministic bearing the environment seed assigned it and moves
//!   radially per the configured [`Mobility`] model, so the same mobility
//!   processes that drive single-AP path-loss drift here drive handoffs.
//! * **Association** — a [`HandoffPolicy`] picks each client's serving AP
//!   every round ([`NearestAp`], [`BestSinr`], or [`Hysteresis`] with a
//!   switching margin). Decisions are a deterministic recurrence over
//!   rounds (memoized internally), so runs reproduce for a fixed seed.
//! * **Per-AP servers** — every AP carries its own [`EdgeServer`]; the
//!   discrete-event round simulation contends server-side work per AP
//!   through [`ChannelModel::server_at`] / [`ChannelModel::ap_of`].
//! * **Interference** — concurrent uplink transmitters are heard at the
//!   victim's serving AP through the same path-loss pipeline as the
//!   signal, scaled by the [`InterferenceSpec`] reuse factor.
//!
//! **Degenerate case, guaranteed:** one AP at the origin, no interference
//! and stationary (or any) mobility reproduces the single-AP environment
//! **byte for byte** — distances to an AP at the origin are the mobility
//! radii themselves, not a 2D round trip through `sqrt`.

use crate::backhaul::BackhaulLink;
use crate::energy::PowerProfile;
use crate::environment::ChannelModel;
use crate::interference::{co_channel_interference_mw, InterferenceSpec};
use crate::latency::LatencyModel;
use crate::mobility::{Mobility, Stationary};
use crate::server::EdgeServer;
use crate::units::{Bytes, FlopsRate, Hertz, Meters, Seconds};
use crate::{Result, WirelessError};
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::RwLock;

/// One access point with its co-located edge server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessPoint {
    /// AP x coordinate, meters.
    pub x_m: f64,
    /// AP y coordinate, meters.
    pub y_m: f64,
    /// The edge server co-located with this AP.
    pub server: EdgeServer,
}

impl AccessPoint {
    fn at_origin(&self) -> bool {
        self.x_m == 0.0 && self.y_m == 0.0
    }
}

/// What a handoff policy sees about one candidate AP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApSignal {
    /// Candidate AP index.
    pub ap: usize,
    /// Client–AP distance this round.
    pub distance: Meters,
    /// Received pilot power at the client from this AP, dBm (path loss
    /// plus the client's current fading state).
    pub rx_power_dbm: f64,
}

/// Decides which AP a client associates with each round.
///
/// Implementations must be pure functions of their inputs — the
/// environment memoizes the round-by-round recurrence, so a policy that
/// consulted hidden mutable state would break determinism.
pub trait HandoffPolicy: std::fmt::Debug + Send + Sync {
    /// Picks the serving AP for `client` in `round`. `current` is the
    /// previous round's association (`None` in round 0); `candidates`
    /// always contains every AP, in index order.
    fn choose(
        &self,
        client: usize,
        round: u64,
        current: Option<usize>,
        candidates: &[ApSignal],
    ) -> usize;
}

/// Associate with the geometrically nearest AP (ties go to the lowest
/// index). Ping-pongs at cell edges under mobility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NearestAp;

impl HandoffPolicy for NearestAp {
    fn choose(&self, _c: usize, _r: u64, _cur: Option<usize>, candidates: &[ApSignal]) -> usize {
        best_by(candidates, |s| -s.distance.as_meters())
    }
}

/// Associate with the AP offering the strongest received power — the
/// best-SINR choice when interference is homogeneous across APs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BestSinr;

impl HandoffPolicy for BestSinr {
    fn choose(&self, _c: usize, _r: u64, _cur: Option<usize>, candidates: &[ApSignal]) -> usize {
        best_by(candidates, |s| s.rx_power_dbm)
    }
}

/// [`BestSinr`] with a switching margin: stay on the current AP unless a
/// candidate is at least `margin_db` stronger — the standard cure for
/// cell-edge ping-pong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hysteresis {
    /// Required advantage (dB) before switching away from the serving AP.
    pub margin_db: f64,
}

impl HandoffPolicy for Hysteresis {
    fn choose(&self, _c: usize, _r: u64, current: Option<usize>, candidates: &[ApSignal]) -> usize {
        let best = best_by(candidates, |s| s.rx_power_dbm);
        let Some(cur) = current else {
            return best;
        };
        let cur_db = candidates[cur].rx_power_dbm;
        if candidates[best].rx_power_dbm >= cur_db + self.margin_db {
            best
        } else {
            cur
        }
    }
}

fn best_by(candidates: &[ApSignal], score: impl Fn(&ApSignal) -> f64) -> usize {
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (i, s) in candidates.iter().enumerate() {
        let v = score(s);
        if v > best_score {
            best = i;
            best_score = v;
        }
    }
    best
}

/// Serde-loadable handoff policy names (for [`crate::scenario::Scenario`]
/// presets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HandoffKind {
    /// Geometrically nearest AP.
    Nearest,
    /// Strongest received power.
    BestSinr,
    /// Strongest received power with a switching margin in dB.
    Hysteresis {
        /// Required advantage (dB) before switching.
        margin_db: f64,
    },
}

impl HandoffKind {
    /// Builds the policy object.
    pub fn policy(&self) -> Box<dyn HandoffPolicy> {
        match *self {
            HandoffKind::Nearest => Box::new(NearestAp),
            HandoffKind::BestSinr => Box::new(BestSinr),
            HandoffKind::Hysteresis { margin_db } => Box::new(Hysteresis { margin_db }),
        }
    }
}

/// A wireless environment with several APs / edge servers (see the module
/// docs). Built via [`MultiApEnvironment::builder`].
#[derive(Debug)]
pub struct MultiApEnvironment {
    base: LatencyModel,
    aps: Vec<AccessPoint>,
    mobility: Box<dyn Mobility>,
    handoff: Box<dyn HandoffPolicy>,
    interference: Option<InterferenceSpec>,
    backhaul: Option<BackhaulLink>,
    /// Per-client bearing from the origin (radians); the mobility model
    /// supplies the radius.
    angles: Vec<f64>,
    /// Memoized associations: `assoc[round][client]`, filled in round
    /// order so the handoff recurrence is deterministic.
    assoc: RwLock<Vec<Vec<usize>>>,
}

/// Builder for [`MultiApEnvironment`].
#[derive(Debug)]
pub struct MultiApEnvironmentBuilder {
    base: LatencyModel,
    aps: Vec<AccessPoint>,
    mobility: Box<dyn Mobility>,
    handoff: Box<dyn HandoffPolicy>,
    interference: Option<InterferenceSpec>,
    backhaul: Option<BackhaulLink>,
    seed: u64,
}

impl MultiApEnvironment {
    /// Starts a builder over a base latency model. With no further calls
    /// the result is a single AP at the origin carrying the base model's
    /// server — byte-identical to
    /// [`crate::environment::StaticEnvironment`].
    pub fn builder(base: LatencyModel) -> MultiApEnvironmentBuilder {
        let server = *base.server();
        MultiApEnvironmentBuilder {
            base,
            aps: vec![AccessPoint {
                x_m: 0.0,
                y_m: 0.0,
                server,
            }],
            mobility: Box::new(Stationary),
            handoff: Box::new(NearestAp),
            interference: None,
            backhaul: None,
            seed: 0,
        }
    }

    /// The client's radial distance from the origin this round (the
    /// mobility model over the placement radius).
    fn radius(&self, client: usize, round: u64) -> Result<Meters> {
        let placed = self.base.distance(client)?;
        Ok(self.mobility.distance_at(client, placed, round))
    }

    /// Distance from `client` to AP `ap` this round. An AP at the origin
    /// sees exactly the mobility radius (no 2D round trip), which is what
    /// makes the single-AP case bit-identical to the single-AP
    /// environments.
    fn distance_to_ap(&self, client: usize, ap: usize, round: u64) -> Result<Meters> {
        let r = self.radius(client, round)?;
        let ap = &self.aps[ap];
        if ap.at_origin() {
            return Ok(r);
        }
        let theta = self.angles[client];
        let dx = r.as_meters() * theta.cos() - ap.x_m;
        let dy = r.as_meters() * theta.sin() - ap.y_m;
        Ok(Meters::new((dx * dx + dy * dy).sqrt().max(1.0)))
    }

    fn signals(&self, client: usize, round: u64) -> Result<Vec<ApSignal>> {
        let gain = self.base.uplink_gain(client, round);
        let budget = self.base.uplink_budget();
        (0..self.aps.len())
            .map(|ap| {
                let d = self.distance_to_ap(client, ap, round)?;
                Ok(ApSignal {
                    ap,
                    distance: d,
                    rx_power_dbm: 10.0 * budget.rx_power_mw(d, gain).log10(),
                })
            })
            .collect()
    }

    /// The serving AP of `client` in `round`, memoizing the handoff
    /// recurrence from round 0.
    fn association(&self, client: usize, round: u64) -> Result<usize> {
        if client >= self.base.client_count() {
            return Err(WirelessError::UnknownClient {
                client,
                clients: self.base.client_count(),
            });
        }
        if self.aps.len() == 1 {
            return Ok(0);
        }
        {
            let cache = self.assoc.read().expect("assoc lock poisoned");
            if let Some(row) = cache.get(round as usize) {
                return Ok(row[client]);
            }
        }
        let mut cache = self.assoc.write().expect("assoc lock poisoned");
        while cache.len() <= round as usize {
            let r = cache.len() as u64;
            let prev = if r == 0 {
                None
            } else {
                Some(cache[r as usize - 1].clone())
            };
            let mut row = Vec::with_capacity(self.base.client_count());
            for c in 0..self.base.client_count() {
                let signals = self.signals(c, r)?;
                let current = prev.as_ref().map(|p| p[c]);
                let chosen = self.handoff.choose(c, r, current, &signals);
                row.push(chosen.min(self.aps.len() - 1));
            }
            cache.push(row);
        }
        Ok(cache[round as usize][client])
    }

    /// The configured APs.
    pub fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    fn interference_mw(&self, client: usize, round: u64, interferers: &[usize]) -> Result<f64> {
        let Some(spec) = self.interference else {
            return Ok(0.0);
        };
        let victim_ap = self.association(client, round)?;
        let mut sources = Vec::with_capacity(interferers.len());
        for &i in interferers {
            if i == client {
                continue;
            }
            // The interferer is heard at the *victim's* serving AP from
            // wherever the interferer currently is.
            let d = self.distance_to_ap(i, victim_ap, round)?;
            sources.push((d, self.base.uplink_gain(i, round)));
        }
        Ok(co_channel_interference_mw(
            self.base.uplink_budget(),
            &sources,
            spec,
        ))
    }

    /// Downlink twin of [`MultiApEnvironment::interference_mw`]: each
    /// concurrent downlink is transmitted by the AP *serving that
    /// receiver*, and is heard at the victim client from the victim's
    /// distance to that AP (with the victim's downlink fading state —
    /// the cross-AP path has no stream of its own).
    fn downlink_interference_mw(
        &self,
        client: usize,
        round: u64,
        receivers: &[usize],
    ) -> Result<f64> {
        let Some(spec) = self.interference else {
            return Ok(0.0);
        };
        let gain = self.base.downlink_gain(client, round);
        let mut sources = Vec::with_capacity(receivers.len());
        for &r in receivers {
            if r == client {
                continue;
            }
            let serving_ap = self.association(r, round)?;
            let d = self.distance_to_ap(client, serving_ap, round)?;
            sources.push((d, gain));
        }
        Ok(co_channel_interference_mw(
            self.base.downlink_budget(),
            &sources,
            spec,
        ))
    }
}

impl MultiApEnvironmentBuilder {
    /// Places `n` APs on a line along the x axis with `spacing_m` between
    /// neighbours, centered so a single AP sits exactly at the origin.
    /// Every AP carries a clone of the base model's edge server.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for zero APs or non-positive
    /// spacing with more than one AP.
    pub fn line(mut self, n: usize, spacing_m: f64) -> Result<Self> {
        if n == 0 {
            return Err(WirelessError::Config("need at least one AP".into()));
        }
        if n > 1 && spacing_m <= 0.0 {
            return Err(WirelessError::Config(format!(
                "AP spacing must be > 0, got {spacing_m}"
            )));
        }
        let server = *self.base.server();
        let center = (n as f64 - 1.0) / 2.0;
        self.aps = (0..n)
            .map(|k| AccessPoint {
                x_m: if n == 1 {
                    0.0
                } else {
                    (k as f64 - center) * spacing_m
                },
                y_m: 0.0,
                server,
            })
            .collect();
        Ok(self)
    }

    /// Uses an explicit AP layout (positions and per-AP servers).
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for an empty layout.
    pub fn aps(mut self, aps: Vec<AccessPoint>) -> Result<Self> {
        if aps.is_empty() {
            return Err(WirelessError::Config("need at least one AP".into()));
        }
        self.aps = aps;
        Ok(self)
    }

    /// Sets the mobility model driving re-association.
    pub fn mobility(mut self, m: impl Mobility + 'static) -> Self {
        self.mobility = Box::new(m);
        self
    }

    /// Sets the handoff policy.
    pub fn handoff(mut self, p: impl HandoffPolicy + 'static) -> Self {
        self.handoff = Box::new(p);
        self
    }

    /// Sets the handoff policy from a serde-loadable kind.
    pub fn handoff_kind(mut self, k: HandoffKind) -> Self {
        self.handoff = k.policy();
        self
    }

    /// Enables co-channel interference.
    pub fn interference(mut self, spec: InterferenceSpec) -> Self {
        self.interference = Some(spec);
        self
    }

    /// Prices the AP→aggregator backhaul hop with `link` (every AP gets
    /// the same link profile). Without this call the backhaul is free —
    /// the historical single-tier behavior.
    pub fn backhaul(mut self, link: BackhaulLink) -> Self {
        self.backhaul = Some(link);
        self
    }

    /// Seeds the deterministic client bearings.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the environment.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for an invalid interference spec.
    pub fn build(self) -> Result<MultiApEnvironment> {
        if let Some(i) = self.interference {
            i.validate()?;
        }
        if let Some(b) = self.backhaul {
            b.validate()?;
        }
        let seeds = SeedDerive::new(self.seed).child("multi-ap-bearings");
        let angles = (0..self.base.client_count())
            .map(|c| {
                let mut rng = seeds.index(c as u64).rng();
                rng.gen::<f64>() * 2.0 * std::f64::consts::PI
            })
            .collect();
        Ok(MultiApEnvironment {
            base: self.base,
            aps: self.aps,
            mobility: self.mobility,
            handoff: self.handoff,
            interference: self.interference,
            backhaul: self.backhaul,
            angles,
            assoc: RwLock::new(Vec::new()),
        })
    }
}

impl ChannelModel for MultiApEnvironment {
    fn client_count(&self) -> usize {
        self.base.client_count()
    }

    fn total_bandwidth(&self, _round: u64) -> Hertz {
        self.base.total_bandwidth()
    }

    fn server(&self) -> &EdgeServer {
        self.base.server()
    }

    fn power(&self) -> &PowerProfile {
        self.base.power()
    }

    fn distance(&self, client: usize, round: u64) -> Result<Meters> {
        let ap = self.association(client, round)?;
        self.distance_to_ap(client, ap, round)
    }

    fn device_rate(&self, client: usize, _round: u64) -> Result<FlopsRate> {
        Ok(self.base.device(client)?.rate())
    }

    fn uplink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        self.base.uplink_time_at(client, payload, round, share, d)
    }

    fn downlink_time(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        self.base.downlink_time_at(client, payload, round, share, d)
    }

    fn uplink_rate_bps(&self, client: usize, round: u64, share: Hertz) -> Result<f64> {
        let d = self.distance(client, round)?;
        Ok(self.base.uplink_rate_bps_at(client, round, share, d))
    }

    fn uplink_gain(&self, client: usize, round: u64) -> Result<f64> {
        self.base.distance(client)?; // index check
        Ok(self.base.uplink_gain(client, round))
    }

    fn client_compute(&self, client: usize, flops: u64, _round: u64) -> Result<Seconds> {
        self.base.client_compute(client, flops)
    }

    fn server_compute(&self, flops: u64) -> Seconds {
        self.base.server_compute(flops)
    }

    fn interference(&self) -> Option<InterferenceSpec> {
        self.interference
    }

    fn uplink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        let i_mw = self.interference_mw(client, round, interferers)?;
        self.base
            .uplink_time_at_sinr(client, payload, round, share, d, i_mw)
    }

    fn uplink_rate_bps_among(
        &self,
        client: usize,
        round: u64,
        share: Hertz,
        interferers: &[usize],
    ) -> Result<f64> {
        let d = self.distance(client, round)?;
        let i_mw = self.interference_mw(client, round, interferers)?;
        Ok(self
            .base
            .uplink_rate_bps_at_sinr(client, round, share, d, i_mw))
    }

    fn downlink_time_among(
        &self,
        client: usize,
        payload: Bytes,
        round: u64,
        share: Hertz,
        receivers: &[usize],
    ) -> Result<Seconds> {
        let d = self.distance(client, round)?;
        let i_mw = self.downlink_interference_mw(client, round, receivers)?;
        self.base
            .downlink_time_at_sinr(client, payload, round, share, d, i_mw)
    }

    fn ap_count(&self) -> usize {
        self.aps.len()
    }

    fn ap_of(&self, client: usize, round: u64) -> Result<usize> {
        self.association(client, round)
    }

    fn server_at(&self, ap: usize) -> &EdgeServer {
        &self.aps[ap.min(self.aps.len() - 1)].server
    }

    fn server_compute_at(&self, ap: usize, flops: u64) -> Seconds {
        self.server_at(ap).compute_time(flops)
    }

    fn backhaul(&self, ap: usize) -> Option<BackhaulLink> {
        if ap < self.aps.len() {
            self.backhaul
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::StaticEnvironment;
    use crate::mobility::RandomWaypoint;

    fn base(clients: usize) -> LatencyModel {
        LatencyModel::builder()
            .clients(clients)
            .seed(5)
            .build()
            .unwrap()
    }

    fn roaming(clients: usize, aps: usize) -> MultiApEnvironment {
        MultiApEnvironment::builder(base(clients))
            .line(aps, 150.0)
            .unwrap()
            .mobility(RandomWaypoint {
                min_m: 20.0,
                max_m: 300.0,
                epoch_rounds: 4,
                seed: 3,
            })
            .handoff(NearestAp)
            .seed(9)
            .build()
            .unwrap()
    }

    #[test]
    fn single_ap_is_bitwise_static_environment() {
        let multi = MultiApEnvironment::builder(base(4)).build().unwrap();
        let single = StaticEnvironment::new(base(4));
        let payload = Bytes::new(150_000);
        let share = Hertz::from_mhz(1.0);
        for round in 0..6u64 {
            for c in 0..4 {
                assert_eq!(
                    multi.uplink_time(c, payload, round, share).unwrap(),
                    single.uplink_time(c, payload, round, share).unwrap()
                );
                assert_eq!(
                    multi.downlink_time(c, payload, round, share).unwrap(),
                    single.downlink_time(c, payload, round, share).unwrap()
                );
                assert_eq!(
                    multi.distance(c, round).unwrap(),
                    single.distance(c, round).unwrap()
                );
                assert_eq!(multi.ap_of(c, round).unwrap(), 0);
            }
        }
        assert_eq!(multi.ap_count(), 1);
        assert_eq!(
            multi.server_compute(1_000_000),
            single.server_compute(1_000_000)
        );
    }

    #[test]
    fn mobility_drives_reassociation() {
        let env = roaming(6, 3);
        let mut handoffs = 0usize;
        for c in 0..6 {
            let mut prev = env.ap_of(c, 0).unwrap();
            for round in 1..40u64 {
                let ap = env.ap_of(c, round).unwrap();
                assert!(ap < 3);
                if ap != prev {
                    handoffs += 1;
                }
                prev = ap;
            }
        }
        assert!(handoffs > 0, "waypoint roaming must trigger handoffs");
    }

    #[test]
    fn associations_deterministic_regardless_of_query_order() {
        let a = roaming(4, 3);
        let b = roaming(4, 3);
        // Query b backwards, a forwards: memoized recurrence must agree.
        let rounds: Vec<u64> = (0..20).collect();
        let fwd: Vec<usize> = rounds
            .iter()
            .flat_map(|&r| (0..4).map(move |c| (c, r)))
            .map(|(c, r)| a.ap_of(c, r).unwrap())
            .collect();
        // Query b newest-round-first, then replay in forward order: the
        // memoized recurrence must give the same answers.
        for &r in rounds.iter().rev() {
            for c in 0..4 {
                b.ap_of(c, r).unwrap();
            }
        }
        let replay: Vec<usize> = rounds
            .iter()
            .flat_map(|&r| (0..4).map(move |c| (c, r)))
            .map(|(c, r)| b.ap_of(c, r).unwrap())
            .collect();
        assert_eq!(fwd, replay);
    }

    #[test]
    fn hysteresis_reduces_ping_pong() {
        let sticky = MultiApEnvironment::builder(base(8))
            .line(3, 120.0)
            .unwrap()
            .mobility(RandomWaypoint {
                min_m: 20.0,
                max_m: 260.0,
                epoch_rounds: 3,
                seed: 1,
            })
            .handoff(Hysteresis { margin_db: 6.0 })
            .seed(2)
            .build()
            .unwrap();
        let greedy = MultiApEnvironment::builder(base(8))
            .line(3, 120.0)
            .unwrap()
            .mobility(RandomWaypoint {
                min_m: 20.0,
                max_m: 260.0,
                epoch_rounds: 3,
                seed: 1,
            })
            .handoff(BestSinr)
            .seed(2)
            .build()
            .unwrap();
        let count = |env: &MultiApEnvironment| {
            let mut n = 0usize;
            for c in 0..8 {
                let mut prev = env.ap_of(c, 0).unwrap();
                for r in 1..60u64 {
                    let ap = env.ap_of(c, r).unwrap();
                    if ap != prev {
                        n += 1;
                    }
                    prev = ap;
                }
            }
            n
        };
        assert!(
            count(&sticky) <= count(&greedy),
            "a 6 dB margin must not switch more often than greedy best-SINR"
        );
    }

    #[test]
    fn nearest_ap_shrinks_distance() {
        // With 3 APs the serving distance can only be ≤ the distance to
        // AP 1 (whichever AP that is) — nearest-AP picks the minimum.
        let env = roaming(5, 3);
        for c in 0..5 {
            for r in 0..10u64 {
                let serving = env.distance(c, r).unwrap();
                for ap in 0..3 {
                    assert!(
                        serving.as_meters()
                            <= env.distance_to_ap(c, ap, r).unwrap().as_meters() + 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn per_ap_servers_are_queryable() {
        let fast = EdgeServer::new(FlopsRate::from_gflops(100.0), 8).unwrap();
        let slow = EdgeServer::new(FlopsRate::from_gflops(10.0), 1).unwrap();
        let env = MultiApEnvironment::builder(base(2))
            .aps(vec![
                AccessPoint {
                    x_m: 0.0,
                    y_m: 0.0,
                    server: fast,
                },
                AccessPoint {
                    x_m: 200.0,
                    y_m: 0.0,
                    server: slow,
                },
            ])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(env.ap_count(), 2);
        assert_eq!(env.server_at(0).slots(), 8);
        assert_eq!(env.server_at(1).slots(), 1);
        assert!(
            env.server_compute_at(1, 1_000_000_000).as_secs_f64()
                > env.server_compute_at(0, 1_000_000_000).as_secs_f64()
        );
    }

    #[test]
    fn cross_ap_interference_slows_uplinks() {
        let env = MultiApEnvironment::builder(base(4))
            .line(2, 100.0)
            .unwrap()
            .interference(InterferenceSpec { reuse_factor: 0.8 })
            .seed(4)
            .build()
            .unwrap();
        let share = Hertz::from_mhz(1.0);
        let clean = env
            .uplink_time_among(0, Bytes::new(100_000), 1, share, &[])
            .unwrap();
        let noisy = env
            .uplink_time_among(0, Bytes::new(100_000), 1, share, &[1, 2, 3])
            .unwrap();
        assert!(noisy.as_secs_f64() > clean.as_secs_f64());
    }

    #[test]
    fn backhaul_is_off_by_default_and_priced_when_set() {
        let flat = MultiApEnvironment::builder(base(2)).build().unwrap();
        assert!(flat.backhaul(0).is_none());
        let link = BackhaulLink::new(1e8, 1e-3).unwrap();
        let tiered = MultiApEnvironment::builder(base(2))
            .line(2, 100.0)
            .unwrap()
            .backhaul(link)
            .build()
            .unwrap();
        assert_eq!(tiered.backhaul(0), Some(link));
        assert_eq!(tiered.backhaul(1), Some(link));
        assert!(tiered.backhaul(2).is_none(), "out-of-range AP has no link");
        assert!(MultiApEnvironment::builder(base(2))
            .backhaul(BackhaulLink {
                capacity_bps: 0.0,
                latency_s: 0.0,
            })
            .build()
            .is_err());
    }

    #[test]
    fn builder_validation() {
        assert!(MultiApEnvironment::builder(base(1)).line(0, 100.0).is_err());
        assert!(MultiApEnvironment::builder(base(1)).line(2, 0.0).is_err());
        assert!(MultiApEnvironment::builder(base(1)).aps(vec![]).is_err());
        assert!(MultiApEnvironment::builder(base(1))
            .interference(InterferenceSpec { reuse_factor: 3.0 })
            .build()
            .is_err());
        assert!(MultiApEnvironment::builder(base(2))
            .build()
            .unwrap()
            .ap_of(5, 0)
            .is_err());
    }
}
