//! Wireless network substrate for the GSFL reproduction.
//!
//! The paper evaluates training schemes over a resource-limited wireless
//! network: one access point (AP) with a co-located edge server, and N
//! mobile clients. This crate provides the standard physical-layer and
//! device models that the latency accounting is built on (the same family
//! of models as the paper's reference \[2\], Wu et al., JSAC 2023):
//!
//! * [`units`] — strongly typed quantities ([`units::Seconds`],
//!   [`units::Bytes`], [`units::Hertz`], [`units::Dbm`], …),
//! * [`pathloss`] — free-space and log-distance path loss with log-normal
//!   shadowing,
//! * [`fading`] — Rayleigh block fading, deterministic per (link, round),
//! * [`link`] — SNR/SINR and Shannon-capacity achievable rate,
//! * [`interference`] — co-channel interference between concurrent
//!   transmitters (reuse/orthogonality factor over the SINR form),
//! * [`allocation`] — how the AP divides its bandwidth among concurrent
//!   transmitters (equal / weighted / channel-aware),
//! * [`backhaul`] — AP→aggregator backhaul links priced into two-tier
//!   (hierarchical) aggregation,
//! * [`device`] — heterogeneous client compute profiles,
//! * [`server`] — the edge-server compute profile (rate + parallel slots),
//! * [`topology`] — client placement around the AP,
//! * [`latency`] — the composed latency model: transmission and
//!   computation times for arbitrary payloads and FLOP counts,
//! * [`environment`] — the pluggable [`ChannelModel`] trait with static
//!   and time-varying implementations ([`RoundConditions`] snapshots,
//!   mobility drift, diurnal bandwidth, stragglers, dropouts),
//! * [`fault`] — seeded mid-round fault injection (transfer loss with
//!   retry/backoff pricing, mid-compute crashes, AP outage windows,
//!   round-start dropouts) behind [`fault::FaultInjector`],
//! * [`mobility`] — client mobility models behind the
//!   [`mobility::Mobility`] trait,
//! * [`multi_ap`] — several APs / edge servers with mobility-driven
//!   re-association behind a [`multi_ap::HandoffPolicy`] trait,
//! * [`trace`] — trace-driven channels: serde-loaded per-client
//!   bandwidth/RTT/availability time series replayed as a
//!   [`ChannelModel`] (hold/interpolate resampling, bundled
//!   diurnal-cellular fixture),
//! * [`scenario`] — serde-loadable [`Scenario`] presets that build
//!   environments over any base model.
//!
//! # Example
//!
//! ```
//! use gsfl_wireless::latency::LatencyModel;
//! use gsfl_wireless::units::Bytes;
//!
//! # fn main() -> Result<(), gsfl_wireless::WirelessError> {
//! let model = LatencyModel::builder().clients(4).seed(7).build()?;
//! // Uplink time for 1 MiB of smashed data from client 0 in round 0.
//! let t = model.uplink_time(0, Bytes::new(1 << 20), 0)?;
//! assert!(t.as_secs_f64() > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;

pub mod allocation;
pub mod backhaul;
pub mod device;
pub mod energy;
pub mod environment;
pub mod fading;
pub mod fault;
pub mod interference;
pub mod latency;
pub mod link;
pub mod mobility;
pub mod multi_ap;
pub mod pathloss;
pub mod scenario;
pub mod server;
pub mod topology;
pub mod trace;
pub mod units;

pub use backhaul::BackhaulLink;
pub use environment::{ChannelModel, RoundConditions};
pub use error::WirelessError;
pub use fault::{FaultInjector, FaultSpec, RetryPolicy, TransferOutcome};
pub use interference::InterferenceSpec;
pub use multi_ap::MultiApEnvironment;
pub use scenario::Scenario;
pub use trace::{ChannelTrace, TraceEnvironment};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WirelessError>;
