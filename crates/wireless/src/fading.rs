//! Small-scale fading.
//!
//! Block Rayleigh fading: the channel power gain of a link is constant
//! within one coherence block (here: one training round) and redrawn
//! independently across blocks. Gains are generated deterministically from
//! `(seed, link id, block)` so repeated queries agree and experiments are
//! reproducible.

use gsfl_tensor::rng::SeedDerive;
use rand::Rng;

/// A small-scale fading process, as a trait.
///
/// Implementations must be deterministic in `(link, block)` so repeated
/// queries agree; [`BlockFading`] is the built-in Rayleigh realization.
/// Nothing in the crate consumes the trait object yet — like
/// [`crate::pathloss::PathLossModel`], it names the seam future
/// environments will accept custom channel statistics through.
pub trait FadingProcess: std::fmt::Debug + Send + Sync {
    /// Channel power gain `|h|²` for `link` in coherence `block`.
    fn power_gain(&self, link: usize, block: u64) -> f64;

    /// The gain expressed in dB.
    fn gain_db(&self, link: usize, block: u64) -> f64 {
        10.0 * self.power_gain(link, block).log10()
    }
}

impl FadingProcess for BlockFading {
    fn power_gain(&self, link: usize, block: u64) -> f64 {
        BlockFading::power_gain(self, link, block)
    }
}

/// Deterministic block-fading process.
#[derive(Debug, Clone, Copy)]
pub struct BlockFading {
    seeds: SeedDerive,
    enabled: bool,
}

impl BlockFading {
    /// Creates a Rayleigh block-fading process from an experiment seed.
    pub fn rayleigh(seed: u64) -> Self {
        BlockFading {
            seeds: SeedDerive::new(seed).child("fading"),
            enabled: true,
        }
    }

    /// A degenerate process with unit gain (no fading), for analytic
    /// cross-checks.
    pub fn none() -> Self {
        BlockFading {
            seeds: SeedDerive::new(0).child("fading"),
            enabled: false,
        }
    }

    /// Channel power gain `|h|²` for `link` in coherence `block`.
    ///
    /// For Rayleigh fading the power gain is exponentially distributed with
    /// unit mean; the draw is clamped below at 0.01 (−20 dB) to keep rates
    /// finite, mimicking the deep-fade protection of real link adaptation.
    pub fn power_gain(&self, link: usize, block: u64) -> f64 {
        if !self.enabled {
            return 1.0;
        }
        let mut rng = self.seeds.index(link as u64).index(block).rng();
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        (-u.ln()).max(0.01)
    }

    /// The gain expressed in dB.
    pub fn gain_db(&self, link: usize, block: u64) -> f64 {
        10.0 * self.power_gain(link, block).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_link_and_block() {
        let f = BlockFading::rayleigh(7);
        assert_eq!(f.power_gain(3, 5), f.power_gain(3, 5));
        assert_ne!(f.power_gain(3, 5), f.power_gain(3, 6));
        assert_ne!(f.power_gain(3, 5), f.power_gain(4, 5));
    }

    #[test]
    fn unit_mean_exponential() {
        let f = BlockFading::rayleigh(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|b| f.power_gain(0, b)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn clamped_above_deep_fade() {
        let f = BlockFading::rayleigh(3);
        for b in 0..5_000 {
            assert!(f.power_gain(1, b) >= 0.01);
        }
    }

    #[test]
    fn none_is_unit_gain() {
        let f = BlockFading::none();
        assert_eq!(f.power_gain(0, 0), 1.0);
        assert_eq!(f.gain_db(9, 9), 0.0);
    }
}
