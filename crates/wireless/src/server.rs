//! Edge-server compute profile.

use crate::units::{FlopsRate, Seconds};
use crate::{Result, WirelessError};
use serde::{Deserialize, Serialize};

/// The edge server co-located with the AP.
///
/// The server executes server-side model passes at `rate` FLOP/s per slot
/// and can run up to `slots` such executions concurrently. Slot contention
/// is what throttles GSFL's inter-group parallelism; it is enforced by the
/// discrete-event simulator, which treats the server as a k-server FIFO
/// resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeServer {
    rate_per_slot: FlopsRate,
    slots: usize,
}

impl EdgeServer {
    /// Creates a server with `slots` parallel executors of `rate_per_slot`
    /// each.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for zero slots or non-positive
    /// rate.
    pub fn new(rate_per_slot: FlopsRate, slots: usize) -> Result<Self> {
        if slots == 0 {
            return Err(WirelessError::Config("server needs ≥ 1 slot".into()));
        }
        if rate_per_slot.as_flops_per_sec() <= 0.0 {
            return Err(WirelessError::Config("server rate must be positive".into()));
        }
        Ok(EdgeServer {
            rate_per_slot,
            slots,
        })
    }

    /// A default edge server: 4 slots × 50 GFLOP/s effective training
    /// throughput.
    pub fn edge_default() -> Self {
        EdgeServer {
            rate_per_slot: FlopsRate::from_gflops(50.0),
            slots: 4,
        }
    }

    /// Per-slot compute rate.
    pub fn rate_per_slot(&self) -> FlopsRate {
        self.rate_per_slot
    }

    /// Number of parallel slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Time for one slot to execute `flops`.
    pub fn compute_time(&self, flops: u64) -> Seconds {
        self.rate_per_slot.time_for(flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let s = EdgeServer::edge_default();
        assert_eq!(s.slots(), 4);
        assert!(s.rate_per_slot().as_flops_per_sec() > 0.0);
    }

    #[test]
    fn compute_time_uses_slot_rate() {
        let s = EdgeServer::new(FlopsRate::from_gflops(10.0), 2).unwrap();
        assert!((s.compute_time(10_000_000_000).as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(EdgeServer::new(FlopsRate::from_gflops(1.0), 0).is_err());
        assert!(EdgeServer::new(FlopsRate::new(0.0), 1).is_err());
    }
}
