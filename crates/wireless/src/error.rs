use std::fmt;

/// Error type for wireless model configuration and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum WirelessError {
    /// A model was configured with an invalid parameter.
    Config(String),
    /// A client index was out of range.
    UnknownClient {
        /// The offending index.
        client: usize,
        /// Number of clients configured.
        clients: usize,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::Config(msg) => write!(f, "configuration error: {msg}"),
            WirelessError::UnknownClient { client, clients } => {
                write!(f, "client {client} out of range for {clients} clients")
            }
        }
    }
}

impl std::error::Error for WirelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_values() {
        let e = WirelessError::UnknownClient {
            client: 9,
            clients: 4,
        };
        assert!(e.to_string().contains('9'));
    }
}
