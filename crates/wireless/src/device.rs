//! Client device compute profiles.

use crate::units::{FlopsRate, Seconds};
use crate::{Result, WirelessError};
use gsfl_tensor::rng::SeedDerive;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Compute capability of one mobile client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    rate: FlopsRate,
}

impl DeviceProfile {
    /// Creates a profile with the given effective training rate.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] for a non-positive rate.
    pub fn new(rate: FlopsRate) -> Result<Self> {
        if rate.as_flops_per_sec() <= 0.0 {
            return Err(WirelessError::Config("device rate must be positive".into()));
        }
        Ok(DeviceProfile { rate })
    }

    /// The device's effective FLOP/s.
    pub fn rate(&self) -> FlopsRate {
        self.rate
    }

    /// Time for the device to execute `flops`.
    pub fn compute_time(&self, flops: u64) -> Seconds {
        self.rate.time_for(flops)
    }
}

/// A sampler for heterogeneous device fleets: rates drawn uniformly from
/// `[min_gflops, max_gflops]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceHeterogeneity {
    /// Slowest device rate in GFLOP/s.
    pub min_gflops: f64,
    /// Fastest device rate in GFLOP/s.
    pub max_gflops: f64,
}

impl Default for DeviceHeterogeneity {
    fn default() -> Self {
        // Effective *training* throughput of mobile-class CPUs.
        DeviceHeterogeneity {
            min_gflops: 0.5,
            max_gflops: 2.0,
        }
    }
}

impl DeviceHeterogeneity {
    /// Samples `n` device profiles deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::Config`] when bounds are non-positive or
    /// inverted.
    pub fn sample(&self, n: usize, seed: u64) -> Result<Vec<DeviceProfile>> {
        if self.min_gflops <= 0.0 || self.max_gflops < self.min_gflops {
            return Err(WirelessError::Config(format!(
                "device rate bounds invalid: [{}, {}]",
                self.min_gflops, self.max_gflops
            )));
        }
        let seeds = SeedDerive::new(seed).child("devices");
        (0..n)
            .map(|i| {
                let mut rng = seeds.index(i as u64).rng();
                let g = if self.max_gflops > self.min_gflops {
                    rng.gen_range(self.min_gflops..=self.max_gflops)
                } else {
                    self.min_gflops
                };
                DeviceProfile::new(FlopsRate::from_gflops(g))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_linear_in_flops() {
        let d = DeviceProfile::new(FlopsRate::from_gflops(1.0)).unwrap();
        let t1 = d.compute_time(1_000_000).as_secs_f64();
        let t2 = d.compute_time(2_000_000).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!((t1 - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_positive_rate() {
        assert!(DeviceProfile::new(FlopsRate::new(0.0)).is_err());
        assert!(DeviceProfile::new(FlopsRate::new(-5.0)).is_err());
    }

    #[test]
    fn heterogeneity_sampler_bounds_and_determinism() {
        let h = DeviceHeterogeneity {
            min_gflops: 1.0,
            max_gflops: 3.0,
        };
        let a = h.sample(20, 5).unwrap();
        let b = h.sample(20, 5).unwrap();
        assert_eq!(a, b);
        for d in &a {
            let g = d.rate().as_flops_per_sec() / 1e9;
            assert!((1.0..=3.0).contains(&g));
        }
        // Heterogeneous: not all equal.
        assert!(a.iter().any(|d| d.rate() != a[0].rate()));
    }

    #[test]
    fn degenerate_equal_bounds_allowed() {
        let h = DeviceHeterogeneity {
            min_gflops: 2.0,
            max_gflops: 2.0,
        };
        let devs = h.sample(3, 0).unwrap();
        assert!(devs
            .iter()
            .all(|d| (d.rate().as_flops_per_sec() - 2e9).abs() < 1.0));
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(DeviceHeterogeneity {
            min_gflops: 0.0,
            max_gflops: 1.0
        }
        .sample(2, 0)
        .is_err());
        assert!(DeviceHeterogeneity {
            min_gflops: 3.0,
            max_gflops: 1.0
        }
        .sample(2, 0)
        .is_err());
    }
}
