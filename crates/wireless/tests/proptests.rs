//! Property-based tests for the wireless substrate.

use gsfl_tensor::rng::SeedDerive;
use gsfl_wireless::allocation::{allocate, BandwidthPolicy, LinkDemand};
use gsfl_wireless::environment::{ChannelModel, DynamicEnvironment, StaticEnvironment};
use gsfl_wireless::interference::InterferenceSpec;
use gsfl_wireless::latency::LatencyModel;
use gsfl_wireless::link::LinkBudget;
use gsfl_wireless::mobility::RandomWaypoint;
use gsfl_wireless::multi_ap::{HandoffKind, MultiApEnvironment};
use gsfl_wireless::pathloss::PathLoss;
use gsfl_wireless::units::{Bytes, Hertz, Meters, Seconds};
use gsfl_wireless::{FaultInjector, FaultSpec, TransferOutcome};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pathloss_monotone_in_distance(
        d1 in 1.0f64..500.0,
        delta in 0.1f64..500.0,
    ) {
        for model in [PathLoss::FreeSpace { carrier_ghz: 3.5 }, PathLoss::urban_default()] {
            let near = model.loss_db(Meters::new(d1));
            let far = model.loss_db(Meters::new(d1 + delta));
            prop_assert!(far >= near, "{model:?}");
        }
    }

    #[test]
    fn shannon_rate_positive_and_monotone_in_bandwidth(
        d in 5.0f64..300.0,
        bw1 in 0.1f64..20.0,
        extra in 0.1f64..20.0,
    ) {
        let lb = LinkBudget::uplink_default();
        let r1 = lb.rate_bps(Meters::new(d), Hertz::from_mhz(bw1), 1.0);
        let r2 = lb.rate_bps(Meters::new(d), Hertz::from_mhz(bw1 + extra), 1.0);
        prop_assert!(r1 > 0.0);
        prop_assert!(r2 > r1, "more bandwidth must raise the rate");
    }

    #[test]
    fn transmit_time_additive_in_payload(
        d in 5.0f64..300.0,
        a in 1u64..1_000_000,
        b in 1u64..1_000_000,
    ) {
        let lb = LinkBudget::uplink_default();
        let bw = Hertz::from_mhz(2.0);
        let t = |bytes: u64| {
            lb.transmit_time(Bytes::new(bytes), Meters::new(d), bw, 1.0)
                .unwrap()
                .as_secs_f64()
        };
        prop_assert!((t(a) + t(b) - t(a + b)).abs() < 1e-9 * t(a + b).max(1.0));
    }

    #[test]
    fn allocation_shares_cover_total_and_stay_positive(
        total_mhz in 0.5f64..50.0,
        payloads in prop::collection::vec(1u64..1_000_000, 1..12),
    ) {
        let demands: Vec<LinkDemand> = payloads
            .iter()
            .map(|&p| LinkDemand {
                payload_bytes: p,
                spectral_efficiency: 1.0 + (p % 7) as f64,
            })
            .collect();
        for policy in [
            BandwidthPolicy::Equal,
            BandwidthPolicy::PayloadWeighted,
            BandwidthPolicy::ChannelAware,
        ] {
            let shares = allocate(policy, Hertz::from_mhz(total_mhz), &demands).unwrap();
            let sum: f64 = shares.iter().map(Hertz::as_hz).sum();
            prop_assert!((sum - total_mhz * 1e6).abs() < 1.0, "{policy:?}");
            prop_assert!(shares.iter().all(|s| s.as_hz() > 0.0), "{policy:?}");
        }
    }

    #[test]
    fn latency_model_deterministic_and_distance_monotone(
        seed in 0u64..200,
        payload in 1u64..1_000_000,
    ) {
        let near = LatencyModel::builder()
            .clients(2)
            .seed(seed)
            .fading(false)
            .fixed_distances(vec![Meters::new(30.0), Meters::new(190.0)])
            .build()
            .unwrap();
        let t_near = near.uplink_time(0, Bytes::new(payload), 0).unwrap();
        let t_far = near.uplink_time(1, Bytes::new(payload), 0).unwrap();
        prop_assert!(t_far > t_near, "farther client must be slower");
        // Determinism across fresh builds.
        let again = LatencyModel::builder()
            .clients(2)
            .seed(seed)
            .fading(false)
            .fixed_distances(vec![Meters::new(30.0), Meters::new(190.0)])
            .build()
            .unwrap();
        prop_assert_eq!(again.uplink_time(0, Bytes::new(payload), 0).unwrap(), t_near);
    }

    #[test]
    fn static_environment_is_query_identical_to_the_model(
        seed in 0u64..200,
        clients in 1usize..8,
        payload in 1u64..2_000_000,
        round in 0u64..100,
        share_mhz in 0.1f64..10.0,
        flops in 1u64..1_000_000_000,
    ) {
        // The trait path must be bit-for-bit the concrete model: this is
        // what makes Scenario::Static provably behavior-preserving.
        let model = LatencyModel::builder().clients(clients).seed(seed).build().unwrap();
        let env = StaticEnvironment::new(model.clone());
        let share = Hertz::from_mhz(share_mhz);
        let payload = Bytes::new(payload);
        for c in 0..clients {
            prop_assert_eq!(
                env.uplink_time(c, payload, round, share).unwrap(),
                model.uplink_time_with(c, payload, round, share).unwrap()
            );
            prop_assert_eq!(
                env.downlink_time(c, payload, round, share).unwrap(),
                model.downlink_time_with(c, payload, round, share).unwrap()
            );
            prop_assert_eq!(
                env.uplink_rate_bps(c, round, share).unwrap(),
                model.uplink_rate_bps(c, round, share).unwrap()
            );
            prop_assert_eq!(
                env.client_compute(c, flops, round).unwrap(),
                model.client_compute(c, flops).unwrap()
            );
            prop_assert_eq!(env.distance(c, round).unwrap(), model.distance(c).unwrap());
            prop_assert!(env.is_available(c, round));
        }
        prop_assert_eq!(env.total_bandwidth(round), model.total_bandwidth());
        prop_assert_eq!(env.server_compute(flops), model.server_compute(flops));
    }

    #[test]
    fn overlay_free_dynamic_environment_matches_static(
        seed in 0u64..100,
        payload in 1u64..1_000_000,
        round in 0u64..50,
    ) {
        let model = LatencyModel::builder().clients(3).seed(seed).build().unwrap();
        let st = StaticEnvironment::new(model.clone());
        let dy = DynamicEnvironment::builder(model).seed(seed).build().unwrap();
        let share = Hertz::from_mhz(1.5);
        for c in 0..3 {
            prop_assert_eq!(
                dy.uplink_time(c, Bytes::new(payload), round, share).unwrap(),
                st.uplink_time(c, Bytes::new(payload), round, share).unwrap()
            );
            prop_assert_eq!(
                dy.conditions(round).unwrap(),
                st.conditions(round).unwrap()
            );
        }
    }

    #[test]
    fn adding_an_interferer_never_increases_rate(
        d in 5.0f64..300.0,
        gain in 0.05f64..4.0,
        bw in 0.2f64..20.0,
        i_base in 0.0f64..1e-6,
        i_extra_d in 5.0f64..400.0,
    ) {
        // SINR monotonicity at the link layer: more aggregate
        // interference power can only lower the Shannon rate.
        let lb = LinkBudget::uplink_default();
        let bw = Hertz::from_mhz(bw);
        let extra = lb.rx_power_mw(Meters::new(i_extra_d), 1.0);
        let before = lb.rate_bps_sinr(Meters::new(d), bw, gain, i_base);
        let after = lb.rate_bps_sinr(Meters::new(d), bw, gain, i_base + extra);
        prop_assert!(after <= before, "{after} > {before}");
        prop_assert!(after > 0.0);
    }

    #[test]
    fn env_interferer_set_monotone_in_uplink_time(
        seed in 0u64..100,
        round in 0u64..32,
        reuse in 0.05f64..1.0,
    ) {
        // Environment layer: growing the concurrent-transmitter set can
        // only slow a victim's uplink.
        let model = LatencyModel::builder().clients(4).seed(seed).build().unwrap();
        let env = StaticEnvironment::new(model)
            .with_interference(InterferenceSpec { reuse_factor: reuse })
            .unwrap();
        let share = Hertz::from_mhz(1.0);
        let t = |interferers: &[usize]| {
            env.uplink_time_among(0, Bytes::new(100_000), round, share, interferers)
                .unwrap()
                .as_secs_f64()
        };
        let t0 = t(&[]);
        let t1 = t(&[1]);
        let t2 = t(&[1, 2]);
        let t3 = t(&[1, 2, 3]);
        prop_assert!(t0 <= t1 && t1 <= t2 && t2 <= t3, "{t0} {t1} {t2} {t3}");
        prop_assert!(t3 > t0, "active interference must actually bite");
    }

    #[test]
    fn env_receiver_set_monotone_in_downlink_time(
        seed in 0u64..100,
        round in 0u64..32,
        reuse in 0.05f64..1.0,
        env_kind in 0usize..2,
    ) {
        // Downlink twin of the uplink monotonicity law: growing the set
        // of concurrently-served receivers can only slow a victim's
        // downlink — in the single-AP environments (same-AP subchannel
        // leakage) and in the multi-AP fleet (other APs' downlinks heard
        // across cells).
        let model = LatencyModel::builder().clients(4).seed(seed).build().unwrap();
        let spec = InterferenceSpec { reuse_factor: reuse };
        let env: Box<dyn ChannelModel> = if env_kind == 1 {
            Box::new(
                MultiApEnvironment::builder(model)
                    .line(2, 120.0)
                    .unwrap()
                    .interference(spec)
                    .seed(seed)
                    .build()
                    .unwrap(),
            )
        } else {
            Box::new(StaticEnvironment::new(model).with_interference(spec).unwrap())
        };
        let share = Hertz::from_mhz(1.0);
        let t = |receivers: &[usize]| {
            env.downlink_time_among(0, Bytes::new(100_000), round, share, receivers)
                .unwrap()
                .as_secs_f64()
        };
        let t0 = t(&[]);
        let t1 = t(&[1]);
        let t2 = t(&[1, 2]);
        let t3 = t(&[1, 2, 3]);
        prop_assert!(t0 <= t1 && t1 <= t2 && t2 <= t3, "{t0} {t1} {t2} {t3}");
        prop_assert!(t3 > t0, "active downlink interference must bite");
        // The victim itself in the receiver set is skipped.
        prop_assert_eq!(t(&[0]), t0);
    }

    #[test]
    fn zero_receivers_reproduce_downlink_bitwise(
        seed in 0u64..100,
        round in 0u64..32,
        payload in 1u64..2_000_000,
        reuse in 0.0f64..1.0,
    ) {
        // Golden-fixture guard for the downlink path: no concurrent
        // receivers (or an inactive spec) must reproduce the plain
        // downlink time byte for byte.
        let model = LatencyModel::builder().clients(3).seed(seed).build().unwrap();
        let plain = StaticEnvironment::new(model.clone());
        let sinr_env = StaticEnvironment::new(model)
            .with_interference(InterferenceSpec { reuse_factor: reuse })
            .unwrap();
        let share = Hertz::from_mhz(2.0);
        for c in 0..3 {
            prop_assert_eq!(
                sinr_env.downlink_time_among(c, Bytes::new(payload), round, share, &[]).unwrap(),
                plain.downlink_time(c, Bytes::new(payload), round, share).unwrap()
            );
        }
    }

    #[test]
    fn zero_interferers_reproduce_snr_numbers_bitwise(
        seed in 0u64..100,
        round in 0u64..32,
        payload in 1u64..2_000_000,
        reuse in 0.0f64..1.0,
    ) {
        // The golden-fixture guard: an interference-capable environment
        // queried with no concurrent transmitters must reproduce the
        // plain SNR environment byte for byte — same floats, not just
        // close ones.
        let model = LatencyModel::builder().clients(3).seed(seed).build().unwrap();
        let plain = StaticEnvironment::new(model.clone());
        let sinr_env = StaticEnvironment::new(model)
            .with_interference(InterferenceSpec { reuse_factor: reuse })
            .unwrap();
        let share = Hertz::from_mhz(2.0);
        for c in 0..3 {
            prop_assert_eq!(
                sinr_env.uplink_time_among(c, Bytes::new(payload), round, share, &[]).unwrap(),
                plain.uplink_time(c, Bytes::new(payload), round, share).unwrap()
            );
            prop_assert_eq!(
                sinr_env.uplink_rate_bps_among(c, round, share, &[]).unwrap(),
                plain.uplink_rate_bps(c, round, share).unwrap()
            );
        }
    }

    #[test]
    fn single_ap_multi_ap_environment_is_bitwise_static(
        seed in 0u64..100,
        round in 0u64..32,
        payload in 1u64..2_000_000,
    ) {
        let model = LatencyModel::builder().clients(3).seed(seed).build().unwrap();
        let single = StaticEnvironment::new(model.clone());
        let multi = MultiApEnvironment::builder(model).seed(seed).build().unwrap();
        let share = Hertz::from_mhz(1.0);
        for c in 0..3 {
            prop_assert_eq!(
                multi.uplink_time(c, Bytes::new(payload), round, share).unwrap(),
                single.uplink_time(c, Bytes::new(payload), round, share).unwrap()
            );
            prop_assert_eq!(
                multi.downlink_time(c, Bytes::new(payload), round, share).unwrap(),
                single.downlink_time(c, Bytes::new(payload), round, share).unwrap()
            );
            prop_assert_eq!(
                multi.conditions(round).unwrap(),
                single.conditions(round).unwrap()
            );
        }
    }

    #[test]
    fn handoff_decisions_deterministic_per_seed(
        seed in 0u64..50,
        kind_idx in 0usize..3,
    ) {
        let kind = [
            HandoffKind::Nearest,
            HandoffKind::BestSinr,
            HandoffKind::Hysteresis { margin_db: 4.0 },
        ][kind_idx];
        let build = || {
            MultiApEnvironment::builder(
                LatencyModel::builder().clients(5).seed(seed).build().unwrap(),
            )
            .line(3, 130.0)
            .unwrap()
            .mobility(RandomWaypoint {
                min_m: 20.0,
                max_m: 280.0,
                epoch_rounds: 5,
                seed,
            })
            .handoff_kind(kind)
            .seed(seed)
            .build()
            .unwrap()
        };
        let a = build();
        let b = build();
        // b is queried in reverse round order to stress the memoization.
        for r in (0..24u64).rev() {
            for c in 0..5 {
                b.ap_of(c, r).unwrap();
            }
        }
        for r in 0..24u64 {
            for c in 0..5 {
                prop_assert_eq!(a.ap_of(c, r).unwrap(), b.ap_of(c, r).unwrap(), "{:?} c{} r{}", kind, c, r);
            }
        }
    }

    #[test]
    fn fading_preserves_mean_rate_ordering(seed in 0u64..100) {
        // Averaged over many rounds, a near client still beats a far one
        // despite fading.
        let model = LatencyModel::builder()
            .clients(2)
            .seed(seed)
            .fixed_distances(vec![Meters::new(30.0), Meters::new(190.0)])
            .build()
            .unwrap();
        let avg = |client: usize| -> f64 {
            (0..200)
                .map(|round| {
                    model
                        .uplink_time(client, Bytes::new(100_000), round)
                        .unwrap()
                        .as_secs_f64()
                })
                .sum::<f64>()
                / 200.0
        };
        prop_assert!(avg(1) > avg(0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The default (zero-fault) spec is the bitwise identity over every
    // query: transfers deliver first try at exactly the input airtime,
    // nobody crashes, everyone is reachable.
    #[test]
    fn zero_fault_spec_is_bitwise_identity(
        seed in 0u64..1000,
        client in 0usize..32,
        round in 0u64..200,
        transfer in 0u64..50,
        airtime in 1e-6f64..100.0,
    ) {
        let f = FaultInjector::new(
            FaultSpec::default(),
            SeedDerive::new(seed).child("environment"),
        ).unwrap();
        let o = f.transfer_outcome(client, round, transfer);
        prop_assert_eq!(o, TransferOutcome::clean());
        let t = Seconds::new(airtime);
        prop_assert_eq!(
            o.total_time(t).as_secs_f64().to_bits(),
            t.as_secs_f64().to_bits(),
            "clean pricing must be the bitwise identity"
        );
        prop_assert_eq!(f.crash_point(client, round), None);
        prop_assert!(f.client_available(client, 0, round));
    }

    // Retry pricing is pointwise monotone in the loss probability:
    // raising `loss_prob` on the same derived stream can only add
    // attempts and backoff, never remove them.
    #[test]
    fn retry_pricing_monotone_in_loss_probability(
        seed in 0u64..200,
        client in 0usize..16,
        round in 0u64..100,
        transfer in 0u64..20,
        p_lo in 0.0f64..0.9,
        bump in 0.0f64..0.09,
        airtime in 1e-6f64..10.0,
    ) {
        let mk = |p: f64| FaultInjector::new(
            FaultSpec { loss_prob: p, ..FaultSpec::default() },
            SeedDerive::new(seed).child("environment"),
        ).unwrap();
        let lo = mk(p_lo).transfer_outcome(client, round, transfer);
        let hi = mk((p_lo + bump).min(0.99)).transfer_outcome(client, round, transfer);
        prop_assert!(hi.attempts >= lo.attempts);
        prop_assert!(hi.backoff_s >= lo.backoff_s);
        let t = Seconds::new(airtime);
        prop_assert!(
            hi.total_time(t).as_secs_f64() >= lo.total_time(t).as_secs_f64(),
            "priced wire time must be monotone in loss_prob"
        );
    }
}
