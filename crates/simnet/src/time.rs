use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Sub};

/// Simulation time in seconds, totally ordered (NaN-free by construction).
///
/// # Example
///
/// ```
/// use gsfl_simnet::SimTime;
///
/// let t = SimTime::new(1.5) + SimTime::new(0.5);
/// assert_eq!(t, SimTime::new(2.0));
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value.
    ///
    /// # Panics
    ///
    /// Panics on NaN — a NaN time would corrupt the event-queue ordering,
    /// and can only arise from a programming error upstream.
    pub fn new(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// The value in seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a + b, SimTime::new(3.0));
        assert_eq!(b - a, SimTime::new(1.0));
        assert_eq!(a.max(b), b);
        let s: SimTime = [a, b].into_iter().sum();
        assert_eq!(s, SimTime::new(3.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }
}
