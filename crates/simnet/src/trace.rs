//! Execution spans.

use crate::graph::{ResourceId, TaskId};
use crate::SimTime;

/// One task's execution interval in a [`crate::Schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The task this span belongs to.
    pub task: TaskId,
    /// Task label (copied from the graph for self-contained traces).
    pub label: String,
    /// Resource the task occupied, if any.
    pub resource: Option<ResourceId>,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }

    /// Whether two spans overlap in time (open intervals — touching
    /// endpoints do not overlap).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: f64, b: f64) -> Span {
        Span {
            task: TaskId(0),
            label: "x".into(),
            resource: None,
            start: SimTime::new(a),
            end: SimTime::new(b),
        }
    }

    #[test]
    fn duration() {
        assert_eq!(span(1.0, 3.5).duration(), SimTime::new(2.5));
    }

    #[test]
    fn overlap_semantics() {
        assert!(span(0.0, 2.0).overlaps(&span(1.0, 3.0)));
        assert!(!span(0.0, 1.0).overlaps(&span(1.0, 2.0))); // touching
        assert!(!span(0.0, 1.0).overlaps(&span(2.0, 3.0)));
        assert!(span(0.0, 10.0).overlaps(&span(4.0, 5.0))); // containment
    }
}
