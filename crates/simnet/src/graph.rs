//! Task-graph construction.

use crate::{Result, SimError, SimTime};

/// Opaque task handle returned by [`TaskGraph::add_task`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) usize);

/// Opaque resource handle returned by [`TaskGraph::add_resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct TaskNode {
    pub label: String,
    pub duration: SimTime,
    pub resource: Option<ResourceId>,
    pub deps: Vec<TaskId>,
    pub dependents: Vec<TaskId>,
}

#[derive(Debug, Clone)]
pub(crate) struct ResourceNode {
    pub label: String,
    pub slots: usize,
}

/// A directed acyclic graph of timed tasks, some of which demand a slot on
/// a k-server FIFO resource for their whole duration.
///
/// # Example
///
/// ```
/// use gsfl_simnet::{SimTime, TaskGraph};
///
/// # fn main() -> Result<(), gsfl_simnet::SimError> {
/// let mut g = TaskGraph::new();
/// let cpu = g.add_resource("cpu", 2);
/// let a = g.add_task("load", SimTime::new(0.5), None, &[])?;
/// let _b = g.add_task("process", SimTime::new(2.0), Some(cpu), &[a])?;
/// assert_eq!(g.task_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<TaskNode>,
    pub(crate) resources: Vec<ResourceNode>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Declares a resource with `slots` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero — a zero-capacity resource can never
    /// run anything, so this is a construction-time programming error.
    pub fn add_resource(&mut self, label: impl Into<String>, slots: usize) -> ResourceId {
        assert!(slots > 0, "resource must have at least one slot");
        self.resources.push(ResourceNode {
            label: label.into(),
            slots,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Adds a task with a fixed `duration`, an optional resource demand,
    /// and precedence dependencies `deps`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDuration`] for negative or non-finite
    /// durations, [`SimError::UnknownTask`] / [`SimError::UnknownResource`]
    /// for dangling references. (Forward references are impossible since
    /// ids are only handed out by this graph.)
    pub fn add_task(
        &mut self,
        label: impl Into<String>,
        duration: SimTime,
        resource: Option<ResourceId>,
        deps: &[TaskId],
    ) -> Result<TaskId> {
        let secs = duration.as_secs_f64();
        if secs < 0.0 || !secs.is_finite() {
            return Err(SimError::InvalidDuration(format!("{secs}")));
        }
        if let Some(ResourceId(r)) = resource {
            if r >= self.resources.len() {
                return Err(SimError::UnknownResource { id: r });
            }
        }
        for &TaskId(d) in deps {
            if d >= self.tasks.len() {
                return Err(SimError::UnknownTask { id: d });
            }
        }
        let id = TaskId(self.tasks.len());
        self.tasks.push(TaskNode {
            label: label.into(),
            duration,
            resource,
            deps: deps.to_vec(),
            dependents: Vec::new(),
        });
        for &dep in deps {
            self.tasks[dep.0].dependents.push(id);
        }
        Ok(id)
    }

    /// Convenience: a task that depends on everything in `deps` and takes
    /// zero time — a join/barrier node.
    ///
    /// # Errors
    ///
    /// Same as [`TaskGraph::add_task`].
    pub fn add_barrier(&mut self, label: impl Into<String>, deps: &[TaskId]) -> Result<TaskId> {
        self.add_task(label, SimTime::ZERO, None, deps)
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// The label of a task.
    ///
    /// # Panics
    ///
    /// Panics for a foreign [`TaskId`] (ids are only valid for the graph
    /// that produced them).
    pub fn task_label(&self, id: TaskId) -> &str {
        &self.tasks[id.0].label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_sequential() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", SimTime::ZERO, None, &[]).unwrap();
        let b = g.add_task("b", SimTime::ZERO, None, &[a]).unwrap();
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.task_label(b), "b");
    }

    #[test]
    fn validation() {
        let mut g = TaskGraph::new();
        assert!(matches!(
            g.add_task("x", SimTime::new(-1.0), None, &[]),
            Err(SimError::InvalidDuration(_))
        ));
        assert!(matches!(
            g.add_task("x", SimTime::ZERO, None, &[TaskId(5)]),
            Err(SimError::UnknownTask { id: 5 })
        ));
        assert!(matches!(
            g.add_task("x", SimTime::ZERO, Some(ResourceId(0)), &[]),
            Err(SimError::UnknownResource { id: 0 })
        ));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_resource_panics() {
        let mut g = TaskGraph::new();
        let _ = g.add_resource("bad", 0);
    }

    #[test]
    fn barrier_is_zero_duration() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", SimTime::new(1.0), None, &[]).unwrap();
        let j = g.add_barrier("join", &[a]).unwrap();
        assert_eq!(g.tasks[j.0].duration, SimTime::ZERO);
    }
}
