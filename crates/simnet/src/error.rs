use std::fmt;

/// Error type for task-graph construction and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task referenced an unknown task id as a dependency.
    UnknownTask {
        /// The offending id value.
        id: usize,
    },
    /// A task referenced an unknown resource id.
    UnknownResource {
        /// The offending id value.
        id: usize,
    },
    /// A duration was negative or non-finite.
    InvalidDuration(String),
    /// The graph contains a dependency cycle (some tasks never became
    /// ready).
    Cycle {
        /// Number of tasks that could not be scheduled.
        stuck: usize,
    },
    /// Miscellaneous construction error.
    Config(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownTask { id } => write!(f, "unknown task id {id}"),
            SimError::UnknownResource { id } => write!(f, "unknown resource id {id}"),
            SimError::InvalidDuration(msg) => write!(f, "invalid duration: {msg}"),
            SimError::Cycle { stuck } => {
                write!(f, "dependency cycle: {stuck} tasks never became ready")
            }
            SimError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(SimError::Cycle { stuck: 3 }.to_string().contains('3'));
    }
}
