//! Deterministic discrete-event simulation of task DAGs with contended
//! resources.
//!
//! The GSFL latency evaluation needs the *makespan* of a workload like
//! "six group-chains of client-compute → uplink → **server-compute** →
//! downlink → client-compute steps, where the bold steps contend for the
//! edge server's k slots". `gsfl-simnet` provides exactly that:
//!
//! * [`TaskGraph`] — tasks with durations, precedence edges, and optional
//!   demands on k-server FIFO [`resources`](TaskGraph::add_resource),
//! * [`Simulator`] — a deterministic event-driven executor,
//! * [`Schedule`] — per-task start/finish spans, resource busy statistics
//!   and the makespan, renderable as a text Gantt chart.
//!
//! Determinism: ties are broken by task insertion order, so the same graph
//! always produces the same schedule.
//!
//! # Example
//!
//! ```
//! use gsfl_simnet::{SimTime, Simulator, TaskGraph};
//!
//! # fn main() -> Result<(), gsfl_simnet::SimError> {
//! let mut g = TaskGraph::new();
//! let server = g.add_resource("server", 1);
//! // Two independent 1-second jobs on a 1-slot server must serialize.
//! let a = g.add_task("a", SimTime::new(1.0), Some(server), &[])?;
//! let b = g.add_task("b", SimTime::new(1.0), Some(server), &[])?;
//! let schedule = Simulator::run(&g)?;
//! assert_eq!(schedule.makespan(), SimTime::new(2.0));
//! assert!(schedule.finish(a) < schedule.finish(b));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod graph;
mod sim;
mod time;
mod trace;

pub use error::SimError;
pub use graph::{ResourceId, TaskGraph, TaskId};
pub use sim::{Schedule, Simulator};
pub use time::SimTime;
pub use trace::Span;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
