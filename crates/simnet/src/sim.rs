//! The event-driven executor.

use crate::graph::{TaskGraph, TaskId};
use crate::trace::Span;
use crate::{Result, SimError, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// The deterministic discrete-event executor (see [`Simulator::run`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulator {
    _priv: (),
}

#[derive(Debug, PartialEq, Eq)]
enum Event {
    Ready(TaskId),
    Complete(TaskId),
}

impl Simulator {
    /// Executes the graph and returns the full schedule.
    ///
    /// Scheduling rules:
    /// * a task becomes *ready* when all dependencies have completed;
    /// * a task without a resource starts the moment it is ready;
    /// * a task with a resource starts when a slot is free, in FIFO order
    ///   of readiness (ties broken by task insertion order);
    /// * durations are fixed; no preemption.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Cycle`] when some tasks never become ready
    /// (dependency cycle).
    pub fn run(graph: &TaskGraph) -> Result<Schedule> {
        let n = graph.tasks.len();
        let mut indegree: Vec<usize> = graph.tasks.iter().map(|t| t.deps.len()).collect();
        let mut start = vec![SimTime::ZERO; n];
        let mut finish = vec![SimTime::ZERO; n];
        let mut done = vec![false; n];
        let mut free_slots: Vec<usize> = graph.resources.iter().map(|r| r.slots).collect();
        let mut waiting: Vec<VecDeque<TaskId>> =
            graph.resources.iter().map(|_| VecDeque::new()).collect();
        let mut busy_time: Vec<f64> = vec![0.0; graph.resources.len()];

        // Priority queue of (time, seq, event); seq gives deterministic
        // FIFO tie-breaking.
        let mut queue: BinaryHeap<Reverse<(SimTime, usize, usize)>> = BinaryHeap::new();
        let mut events: Vec<Event> = Vec::new();
        let push = |queue: &mut BinaryHeap<Reverse<(SimTime, usize, usize)>>,
                    events: &mut Vec<Event>,
                    t: SimTime,
                    ev: Event| {
            let seq = events.len();
            events.push(ev);
            queue.push(Reverse((t, seq, seq)));
        };

        for (i, t) in graph.tasks.iter().enumerate() {
            if t.deps.is_empty() {
                push(
                    &mut queue,
                    &mut events,
                    SimTime::ZERO,
                    Event::Ready(TaskId(i)),
                );
            }
        }

        let mut completed = 0usize;
        while let Some(Reverse((now, _, ev_idx))) = queue.pop() {
            match events[ev_idx] {
                Event::Ready(task) => {
                    let node = &graph.tasks[task.0];
                    match node.resource {
                        None => {
                            start[task.0] = now;
                            push(
                                &mut queue,
                                &mut events,
                                now + node.duration,
                                Event::Complete(task),
                            );
                        }
                        Some(r) => {
                            if free_slots[r.0] > 0 {
                                free_slots[r.0] -= 1;
                                start[task.0] = now;
                                busy_time[r.0] += node.duration.as_secs_f64();
                                push(
                                    &mut queue,
                                    &mut events,
                                    now + node.duration,
                                    Event::Complete(task),
                                );
                            } else {
                                waiting[r.0].push_back(task);
                            }
                        }
                    }
                }
                Event::Complete(task) => {
                    let node = &graph.tasks[task.0];
                    finish[task.0] = now;
                    done[task.0] = true;
                    completed += 1;
                    // Release the resource slot and admit the next waiter.
                    if let Some(r) = node.resource {
                        if let Some(next) = waiting[r.0].pop_front() {
                            let next_node = &graph.tasks[next.0];
                            start[next.0] = now;
                            busy_time[r.0] += next_node.duration.as_secs_f64();
                            push(
                                &mut queue,
                                &mut events,
                                now + next_node.duration,
                                Event::Complete(next),
                            );
                        } else {
                            free_slots[r.0] += 1;
                        }
                    }
                    // Wake dependents.
                    for &dep in &node.dependents {
                        indegree[dep.0] -= 1;
                        if indegree[dep.0] == 0 {
                            push(&mut queue, &mut events, now, Event::Ready(dep));
                        }
                    }
                }
            }
        }

        if completed != n {
            return Err(SimError::Cycle {
                stuck: n - completed,
            });
        }

        let makespan = finish.iter().copied().fold(SimTime::ZERO, SimTime::max);
        let spans = (0..n)
            .map(|i| Span {
                task: TaskId(i),
                label: graph.tasks[i].label.clone(),
                resource: graph.tasks[i].resource,
                start: start[i],
                end: finish[i],
            })
            .collect();
        Ok(Schedule {
            start,
            finish,
            makespan,
            spans,
            busy_time,
            resource_labels: graph.resources.iter().map(|r| r.label.clone()).collect(),
        })
    }
}

/// The result of executing a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct Schedule {
    start: Vec<SimTime>,
    finish: Vec<SimTime>,
    makespan: SimTime,
    spans: Vec<Span>,
    busy_time: Vec<f64>,
    resource_labels: Vec<String>,
}

impl Schedule {
    /// When the whole graph finished.
    pub fn makespan(&self) -> SimTime {
        self.makespan
    }

    /// Start time of a task.
    pub fn start(&self, task: TaskId) -> SimTime {
        self.start[task.0]
    }

    /// Finish time of a task.
    pub fn finish(&self, task: TaskId) -> SimTime {
        self.finish[task.0]
    }

    /// All task spans in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The graph's resources in declaration order, as `(handle, label)`
    /// pairs. This is the supported way for schedule consumers to
    /// recover a handle (e.g. to feed [`Schedule::utilization`]) —
    /// resource ids are assigned by declaration order inside the graph
    /// builder, and reconstructing that order out-of-band is fragile.
    pub fn resources(&self) -> impl Iterator<Item = (crate::ResourceId, &str)> {
        self.resource_labels
            .iter()
            .enumerate()
            .map(|(i, l)| (crate::ResourceId(i), l.as_str()))
    }

    /// The handle of the resource declared with `label`, if any.
    pub fn resource(&self, label: &str) -> Option<crate::ResourceId> {
        self.resource_labels
            .iter()
            .position(|l| l == label)
            .map(crate::ResourceId)
    }

    /// Utilization of a resource over the makespan, in `[0, 1]` (per
    /// slot-second of capacity).
    pub fn utilization(&self, resource: crate::ResourceId, slots: usize) -> f64 {
        let horizon = self.makespan.as_secs_f64();
        if horizon <= 0.0 || slots == 0 {
            return 0.0;
        }
        self.busy_time[resource.0] / (horizon * slots as f64)
    }

    /// Renders an ASCII Gantt chart of the schedule (one row per task),
    /// for debugging and trace logs.
    pub fn gantt(&self, width: usize) -> String {
        let horizon = self.makespan.as_secs_f64().max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for span in &self.spans {
            let a = ((span.start.as_secs_f64() / horizon) * width as f64).round() as usize;
            let b = ((span.end.as_secs_f64() / horizon) * width as f64).round() as usize;
            let b = b.max(a);
            let mut row = String::with_capacity(width + 24);
            for _ in 0..a {
                row.push(' ');
            }
            for _ in a..b {
                row.push('█');
            }
            for _ in b..width {
                row.push(' ');
            }
            let res = span
                .resource
                .map(|r| format!(" [{}]", self.resource_labels[r.0]))
                .unwrap_or_default();
            out.push_str(&format!("{row}| {}{}\n", span.label, res));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskGraph;

    #[test]
    fn chain_sums_durations() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", SimTime::new(1.0), None, &[]).unwrap();
        let b = g.add_task("b", SimTime::new(2.0), None, &[a]).unwrap();
        let c = g.add_task("c", SimTime::new(3.0), None, &[b]).unwrap();
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.makespan(), SimTime::new(6.0));
        assert_eq!(s.start(b), SimTime::new(1.0));
        assert_eq!(s.finish(c), SimTime::new(6.0));
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut g = TaskGraph::new();
        for i in 0..8 {
            g.add_task(format!("t{i}"), SimTime::new(2.0), None, &[])
                .unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.makespan(), SimTime::new(2.0));
    }

    #[test]
    fn single_slot_resource_serializes() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("srv", 1);
        for i in 0..4 {
            g.add_task(format!("t{i}"), SimTime::new(1.0), Some(r), &[])
                .unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.makespan(), SimTime::new(4.0));
        // FIFO in insertion order.
        assert_eq!(s.start(TaskId(0)), SimTime::ZERO);
        assert_eq!(s.start(TaskId(3)), SimTime::new(3.0));
        assert!((s.utilization(r, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resources_are_recoverable_by_label() {
        let mut g = TaskGraph::new();
        let srv = g.add_resource("srv", 1);
        let link = g.add_resource("link", 2);
        g.add_task("t", SimTime::new(1.0), Some(srv), &[]).unwrap();
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.resource("srv"), Some(srv));
        assert_eq!(s.resource("link"), Some(link));
        assert_eq!(s.resource("nope"), None);
        let listed: Vec<_> = s.resources().collect();
        assert_eq!(listed, vec![(srv, "srv"), (link, "link")]);
    }

    #[test]
    fn k_slots_give_k_way_parallelism() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("srv", 3);
        for i in 0..9 {
            g.add_task(format!("t{i}"), SimTime::new(1.0), Some(r), &[])
                .unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.makespan(), SimTime::new(3.0));
    }

    #[test]
    fn diamond_join_waits_for_slowest() {
        let mut g = TaskGraph::new();
        let a = g.add_task("a", SimTime::new(1.0), None, &[]).unwrap();
        let fast = g.add_task("fast", SimTime::new(0.5), None, &[a]).unwrap();
        let slow = g.add_task("slow", SimTime::new(5.0), None, &[a]).unwrap();
        let join = g.add_barrier("join", &[fast, slow]).unwrap();
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.finish(join), SimTime::new(6.0));
    }

    #[test]
    fn mixed_chain_with_contention() {
        // Two chains: compute(1s) → server(2s) with a 1-slot server.
        // Chain starts are simultaneous; server serializes the middle.
        let mut g = TaskGraph::new();
        let srv = g.add_resource("srv", 1);
        let mut finals = Vec::new();
        for i in 0..2 {
            let c = g
                .add_task(format!("c{i}"), SimTime::new(1.0), None, &[])
                .unwrap();
            let sv = g
                .add_task(format!("s{i}"), SimTime::new(2.0), Some(srv), &[c])
                .unwrap();
            let d = g
                .add_task(format!("d{i}"), SimTime::new(1.0), None, &[sv])
                .unwrap();
            finals.push(d);
        }
        let s = Simulator::run(&g).unwrap();
        // First chain: 1+2+1 = 4. Second: server waits until 3, so 3+2+1 = 6.
        assert_eq!(s.makespan(), SimTime::new(6.0));
    }

    #[test]
    fn deterministic_repeat_runs() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("srv", 2);
        let mut prev = None;
        for i in 0..20 {
            let dep = prev.map(|p| vec![p]).unwrap_or_default();
            let t = g
                .add_task(
                    format!("t{i}"),
                    SimTime::new(0.1 * ((i % 7) as f64 + 1.0)),
                    if i % 3 == 0 { Some(r) } else { None },
                    &dep,
                )
                .unwrap();
            if i % 4 == 0 {
                prev = Some(t);
            }
        }
        let s1 = Simulator::run(&g).unwrap();
        let s2 = Simulator::run(&g).unwrap();
        assert_eq!(s1.makespan(), s2.makespan());
        for (a, b) in s1.spans().iter().zip(s2.spans()) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
        }
    }

    #[test]
    fn zero_duration_graph() {
        let mut g = TaskGraph::new();
        let a = g.add_barrier("a", &[]).unwrap();
        let _ = g.add_barrier("b", &[a]).unwrap();
        let s = Simulator::run(&g).unwrap();
        assert_eq!(s.makespan(), SimTime::ZERO);
    }

    #[test]
    fn gantt_renders_rows() {
        let mut g = TaskGraph::new();
        let r = g.add_resource("srv", 1);
        let a = g
            .add_task("first", SimTime::new(1.0), Some(r), &[])
            .unwrap();
        let _ = g
            .add_task("second", SimTime::new(1.0), Some(r), &[a])
            .unwrap();
        let s = Simulator::run(&g).unwrap();
        let chart = s.gantt(20);
        assert!(chart.contains("first"));
        assert!(chart.contains("[srv]"));
        assert_eq!(chart.lines().count(), 2);
    }

    #[test]
    fn empty_graph_is_fine() {
        let s = Simulator::run(&TaskGraph::new()).unwrap();
        assert_eq!(s.makespan(), SimTime::ZERO);
        assert!(s.spans().is_empty());
    }
}
