//! Property-based tests for the discrete-event simulator.

use gsfl_simnet::{SimTime, Simulator, TaskGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chain_makespan_is_sum(durations in prop::collection::vec(0.0f64..10.0, 1..20)) {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for (i, &d) in durations.iter().enumerate() {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_task(format!("t{i}"), SimTime::new(d), None, &deps).unwrap());
        }
        let s = Simulator::run(&g).unwrap();
        let total: f64 = durations.iter().sum();
        prop_assert!((s.makespan().as_secs_f64() - total).abs() < 1e-9);
    }

    #[test]
    fn parallel_makespan_is_max(durations in prop::collection::vec(0.0f64..10.0, 1..20)) {
        let mut g = TaskGraph::new();
        for (i, &d) in durations.iter().enumerate() {
            g.add_task(format!("t{i}"), SimTime::new(d), None, &[]).unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        let max = durations.iter().copied().fold(0.0, f64::max);
        prop_assert!((s.makespan().as_secs_f64() - max).abs() < 1e-9);
    }

    #[test]
    fn single_slot_resource_makespan_is_sum(
        durations in prop::collection::vec(0.01f64..5.0, 1..15),
    ) {
        let mut g = TaskGraph::new();
        let r = g.add_resource("res", 1);
        for (i, &d) in durations.iter().enumerate() {
            g.add_task(format!("t{i}"), SimTime::new(d), Some(r), &[]).unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        let total: f64 = durations.iter().sum();
        prop_assert!((s.makespan().as_secs_f64() - total).abs() < 1e-6);
        // Fully utilized resource.
        prop_assert!((s.utilization(r, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn k_slots_bound_makespan(
        durations in prop::collection::vec(0.01f64..5.0, 1..20),
        slots in 1usize..6,
    ) {
        let mut g = TaskGraph::new();
        let r = g.add_resource("res", slots);
        for (i, &d) in durations.iter().enumerate() {
            g.add_task(format!("t{i}"), SimTime::new(d), Some(r), &[]).unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        let total: f64 = durations.iter().sum();
        let max = durations.iter().copied().fold(0.0, f64::max);
        let makespan = s.makespan().as_secs_f64();
        // Classic machine-scheduling bounds.
        prop_assert!(makespan >= max - 1e-9, "below max-duration bound");
        prop_assert!(makespan >= total / slots as f64 - 1e-6, "below work bound");
        prop_assert!(makespan <= total + 1e-6, "above serial bound");
    }

    #[test]
    fn resource_never_oversubscribed(
        durations in prop::collection::vec(0.01f64..3.0, 2..15),
        slots in 1usize..4,
    ) {
        let mut g = TaskGraph::new();
        let r = g.add_resource("res", slots);
        for (i, &d) in durations.iter().enumerate() {
            g.add_task(format!("t{i}"), SimTime::new(d), Some(r), &[]).unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        // Instantaneous concurrency on the resource, sampled at every span
        // start (concurrency can only change at task starts), must be ≤
        // slots.
        let spans = s.spans();
        for a in spans {
            let t = a.start.as_secs_f64();
            let running = spans
                .iter()
                .filter(|b| b.start.as_secs_f64() <= t && t < b.end.as_secs_f64())
                .count();
            prop_assert!(running <= slots, "{running} > {slots} slots at t={t}");
        }
    }

    #[test]
    fn adding_a_dependency_never_reduces_makespan(
        durations in prop::collection::vec(0.01f64..5.0, 3..10),
    ) {
        let build = |with_extra_dep: bool| {
            let mut g = TaskGraph::new();
            let mut ids = Vec::new();
            for (i, &d) in durations.iter().enumerate() {
                // Baseline: even tasks depend on the previous even task.
                let deps: Vec<_> = if i >= 2 && i % 2 == 0 {
                    vec![ids[i - 2]]
                } else if with_extra_dep && i == 1 {
                    vec![ids[0]]
                } else {
                    vec![]
                };
                ids.push(
                    g.add_task(format!("t{i}"), SimTime::new(d), None, &deps)
                        .unwrap(),
                );
            }
            Simulator::run(&g).unwrap().makespan().as_secs_f64()
        };
        prop_assert!(build(true) >= build(false) - 1e-9);
    }

    #[test]
    fn span_durations_match_task_durations(
        durations in prop::collection::vec(0.0f64..4.0, 1..12),
        slots in 1usize..3,
    ) {
        let mut g = TaskGraph::new();
        let r = g.add_resource("res", slots);
        for (i, &d) in durations.iter().enumerate() {
            let res = if i % 2 == 0 { Some(r) } else { None };
            g.add_task(format!("t{i}"), SimTime::new(d), res, &[]).unwrap();
        }
        let s = Simulator::run(&g).unwrap();
        for (span, &d) in s.spans().iter().zip(&durations) {
            prop_assert!((span.duration().as_secs_f64() - d).abs() < 1e-9);
        }
    }
}
