//! Flattened parameter vectors: the unit of model exchange.
//!
//! When a model (or model half) crosses a wireless link or is aggregated by
//! FedAvg, it travels as a [`ParamVec`] — a flat `Vec<f32>` snapshot of all
//! parameters in network order. This gives a single place for wire-size
//! accounting and makes aggregation simple dense algebra.

use crate::{NnError, Result, Sequential};
use gsfl_tensor::workspace::Workspace;
use serde::{Deserialize, Serialize};

/// A flat snapshot of a network's parameters.
///
/// # Example
///
/// ```
/// use gsfl_nn::{Sequential, layers::Dense, params::ParamVec};
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut a = Sequential::new();
/// a.push(Dense::new(2, 2, 1));
/// let snapshot = ParamVec::from_network(&a);
/// let mut b = Sequential::new();
/// b.push(Dense::new(2, 2, 99)); // different init
/// snapshot.load_into(&mut b)?;  // now identical to a
/// assert_eq!(ParamVec::from_network(&b), snapshot);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamVec {
    values: Vec<f32>,
}

impl ParamVec {
    /// Snapshots all parameters of a network.
    pub fn from_network(net: &Sequential) -> Self {
        let mut values = Vec::with_capacity(net.param_count());
        for p in net.params() {
            values.extend_from_slice(p.value().data());
        }
        ParamVec { values }
    }

    /// Builds a vector from raw values.
    pub fn from_values(values: Vec<f32>) -> Self {
        ParamVec { values }
    }

    /// The flat values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable access to the flat values (used by payload codecs to
    /// apply a lossy transcode in place).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consumes the vector, returning its backing buffer (so a dead
    /// snapshot's allocation can go back into a [`Workspace`] pool).
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Wire size in bytes (4 per scalar).
    pub fn wire_bytes(&self) -> u64 {
        4 * self.values.len() as u64
    }

    /// Writes this snapshot back into a network with the same layout.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLenMismatch`] when the network's parameter
    /// count differs.
    pub fn load_into(&self, net: &mut Sequential) -> Result<()> {
        if net.param_count() != self.values.len() {
            return Err(NnError::ParamLenMismatch {
                expected: net.param_count(),
                actual: self.values.len(),
            });
        }
        let mut off = 0;
        for p in net.params_mut() {
            let n = p.numel();
            p.value_mut()
                .data_mut()
                .copy_from_slice(&self.values[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Euclidean distance to another vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLenMismatch`] when lengths differ.
    pub fn l2_distance(&self, other: &ParamVec) -> Result<f32> {
        if self.len() != other.len() {
            return Err(NnError::ParamLenMismatch {
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt())
    }
}

/// Weighted average of parameter vectors — the FedAvg aggregation rule.
///
/// `models` and `weights` must be equal-length and non-empty; weights are
/// normalized internally, so absolute scales (e.g. sample counts) can be
/// passed directly.
///
/// # Errors
///
/// Returns [`NnError::Config`] for empty inputs or non-positive total
/// weight, [`NnError::ParamLenMismatch`] when vector lengths disagree.
///
/// # Example
///
/// ```
/// use gsfl_nn::params::{fed_avg, ParamVec};
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let a = ParamVec::from_values(vec![0.0, 0.0]);
/// let b = ParamVec::from_values(vec![2.0, 4.0]);
/// let avg = fed_avg(&[a, b], &[1.0, 1.0])?;
/// assert_eq!(avg.values(), &[1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn fed_avg(models: &[ParamVec], weights: &[f64]) -> Result<ParamVec> {
    let mut ws = Workspace::new();
    fed_avg_with(models, weights, &mut ws)
}

/// [`fed_avg`] over recycled [`Workspace`] buffers: the `f64` accumulator
/// and the `f32` result come from (and the accumulator returns to) the
/// pool, so steady-state aggregation performs zero fresh allocations.
/// Bitwise identical to [`fed_avg`] — same accumulation order, same
/// precision.
///
/// # Errors
///
/// Same as [`fed_avg`].
pub fn fed_avg_with(models: &[ParamVec], weights: &[f64], ws: &mut Workspace) -> Result<ParamVec> {
    if models.is_empty() || models.len() != weights.len() {
        return Err(NnError::Config(format!(
            "fed_avg needs matching non-empty models/weights, got {}/{}",
            models.len(),
            weights.len()
        )));
    }
    let total: f64 = weights.iter().sum();
    if total.is_nan() || total <= 0.0 {
        return Err(NnError::Config("fed_avg total weight must be > 0".into()));
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(NnError::Config("fed_avg weights must be ≥ 0".into()));
    }
    let len = models[0].len();
    let mut acc = ws.take_f64_zeroed(len);
    for (m, &w) in models.iter().zip(weights) {
        if m.len() != len {
            ws.give_f64(acc);
            return Err(NnError::ParamLenMismatch {
                expected: len,
                actual: m.len(),
            });
        }
        let frac = w / total;
        for (a, &v) in acc.iter_mut().zip(m.values()) {
            *a += frac * v as f64;
        }
    }
    let mut out = ws.take(len);
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = a as f32;
    }
    ws.give_f64(acc);
    Ok(ParamVec::from_values(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn net(seed: u64) -> Sequential {
        let mut n = Sequential::new();
        n.push(Dense::new(3, 4, seed));
        n.push(Relu::new());
        n.push(Dense::new(4, 2, seed + 1));
        n
    }

    #[test]
    fn snapshot_load_round_trip() {
        let a = net(1);
        let snap = ParamVec::from_network(&a);
        assert_eq!(snap.len(), a.param_count());
        let mut b = net(99);
        assert_ne!(ParamVec::from_network(&b), snap);
        snap.load_into(&mut b).unwrap();
        assert_eq!(ParamVec::from_network(&b), snap);
    }

    #[test]
    fn load_rejects_wrong_layout() {
        let a = net(1);
        let snap = ParamVec::from_network(&a);
        let mut tiny = Sequential::new();
        tiny.push(Dense::new(2, 2, 0));
        assert!(matches!(
            snap.load_into(&mut tiny),
            Err(NnError::ParamLenMismatch { .. })
        ));
    }

    #[test]
    fn fed_avg_of_identical_models_is_identity() {
        let snap = ParamVec::from_network(&net(5));
        let avg = fed_avg(
            &[snap.clone(), snap.clone(), snap.clone()],
            &[1.0, 2.0, 3.0],
        )
        .unwrap();
        assert!(avg.l2_distance(&snap).unwrap() < 1e-5);
    }

    #[test]
    fn fed_avg_weighted_mean() {
        let a = ParamVec::from_values(vec![0.0]);
        let b = ParamVec::from_values(vec![4.0]);
        let avg = fed_avg(&[a, b], &[3.0, 1.0]).unwrap();
        assert!((avg.values()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fed_avg_validates() {
        assert!(fed_avg(&[], &[]).is_err());
        let a = ParamVec::from_values(vec![0.0]);
        let b = ParamVec::from_values(vec![0.0, 1.0]);
        assert!(fed_avg(&[a.clone(), b], &[1.0, 1.0]).is_err());
        assert!(fed_avg(std::slice::from_ref(&a), &[0.0]).is_err());
        assert!(fed_avg(&[a.clone(), a], &[1.0, -1.0]).is_err());
    }

    #[test]
    fn fed_avg_with_matches_fed_avg_and_reuses_buffers() {
        let models: Vec<ParamVec> = (0..4)
            .map(|s| ParamVec::from_network(&net(s as u64)))
            .collect();
        let weights = [1.0, 2.5, 0.5, 3.0];
        let plain = fed_avg(&models, &weights).unwrap();
        let mut ws = Workspace::new();
        let pooled = fed_avg_with(&models, &weights, &mut ws).unwrap();
        // Bitwise identical — same accumulation order and precision.
        let plain_bits: Vec<u32> = plain.values().iter().map(|v| v.to_bits()).collect();
        let pooled_bits: Vec<u32> = pooled.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(plain_bits, pooled_bits);
        // Warm-up paid for one f64 accumulator and one f32 result.
        assert_eq!(ws.fresh_allocs(), 2);
        // Recycling the dead result makes the next call allocation-free.
        ws.give(pooled.into_values());
        for _ in 0..5 {
            let again = fed_avg_with(&models, &weights, &mut ws).unwrap();
            ws.give(again.into_values());
        }
        assert_eq!(ws.fresh_allocs(), 2, "steady state must not allocate");
    }

    #[test]
    fn wire_bytes_is_4x() {
        assert_eq!(ParamVec::from_values(vec![0.0; 10]).wire_bytes(), 40);
    }

    #[test]
    fn l2_distance_basic() {
        let a = ParamVec::from_values(vec![0.0, 3.0]);
        let b = ParamVec::from_values(vec![4.0, 0.0]);
        assert!((a.l2_distance(&b).unwrap() - 5.0).abs() < 1e-6);
        let c = ParamVec::from_values(vec![0.0]);
        assert!(a.l2_distance(&c).is_err());
    }
}
