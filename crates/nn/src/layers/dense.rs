use crate::flops::LayerFlops;
use crate::layer::{cache_tensor, Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::init::Init;
use gsfl_tensor::matmul::{matmul_a_bt_ws, matmul_at_b_ws, matmul_ws};
use gsfl_tensor::rng::seeded_rng;
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;

/// Fully connected layer: `y = x · Wᵀ + b` with `W: [out×in]`, `b: [out]`.
///
/// # Example
///
/// ```
/// use gsfl_nn::layers::Dense;
/// use gsfl_nn::layer::{Layer, Mode};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut layer = Dense::new(4, 2, 7);
/// let y = layer.forward(&Tensor::zeros(&[3, 4]), Mode::Train)?;
/// assert_eq!(y.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Parameter,
    bias: Parameter,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights drawn from `seed`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let weight = Init::HeNormal {
            fan_in: in_features,
        }
        .tensor(&[out_features, in_features], &mut rng);
        Dense {
            weight: Parameter::new(weight),
            bias: Parameter::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Accumulates dW and db from `grad_out` (shared by the full and
    /// input-gradient-skipping backward paths).
    fn accumulate_param_grads(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<()> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward {
                layer: format!("dense({}→{})", self.in_features, self.out_features),
            })?;
        // dW = dYᵀ · X  → [out×n]·[n×in] = [out×in]
        let dw = matmul_at_b_ws(grad_out, input, ws)?;
        self.weight.grad_mut().add_assign_t(&dw)?;
        ws.recycle(dw);
        // db = Σ_rows dY
        let (_, out) = grad_out.shape().as_matrix()?;
        let mut db = ws.take_zeroed(out);
        for row in grad_out.data().chunks_exact(out) {
            for (d, &v) in db.iter_mut().zip(row) {
                *d += v;
            }
        }
        for (g, &d) in self.bias.grad_mut().data_mut().iter_mut().zip(&db) {
            *g += d;
        }
        ws.give(db);
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> String {
        format!("dense({}→{})", self.in_features, self.out_features)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(input, mode, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        // y = x · Wᵀ : [n×in] · [out×in]ᵀ = [n×out]
        let mut y = matmul_a_bt_ws(input, self.weight.value(), ws)?;
        let out = self.out_features;
        let b = self.bias.value().data();
        for row in y.data_mut().chunks_exact_mut(out) {
            for (v, &bv) in row.iter_mut().zip(b) {
                *v += bv;
            }
        }
        if mode == Mode::Train {
            cache_tensor(&mut self.cached_input, input);
        }
        Ok(y)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        self.accumulate_param_grads(grad_out, ws)?;
        // dX = dY · W → [n×out]·[out×in] = [n×in]
        Ok(matmul_ws(grad_out, self.weight.value(), ws)?)
    }

    fn backward_ws_last(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<()> {
        self.accumulate_param_grads(grad_out, ws)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 2 || input_dims[1] != self.in_features {
            return Err(NnError::Config(format!(
                "dense expects [n×{}], got {input_dims:?}",
                self.in_features
            )));
        }
        Ok(vec![input_dims[0], self.out_features])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        self.output_shape(input_dims)?;
        // 2·in·out MACs per sample plus the bias add.
        Ok(LayerFlops::gemm(
            2 * self.in_features as u64 * self.out_features as u64 + self.out_features as u64,
        ))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Dense {
            cached_input: None,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut layer = Dense::new(3, 2, 0);
        layer.params_mut()[1].value_mut().fill(1.0); // bias = 1
        let y = layer.forward(&Tensor::zeros(&[4, 3]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert!(y.data().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut layer = Dense::new(3, 2, 0);
        let g = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            layer.backward(&g),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut layer = Dense::new(3, 2, 5);
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.3 - 0.4);
        let y = layer.forward(&x, Mode::Train).unwrap();
        // Loss = sum(y) so dY = 1.
        let gx = layer.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        // Weight gradient check.
        let wgrad = layer.params()[0].grad().clone();
        for flat in 0..6 {
            let orig = layer.params()[0].value().data()[flat];
            layer.params_mut()[0].value_mut().data_mut()[flat] = orig + eps;
            let fp = layer.forward(&x, Mode::Eval).unwrap().sum();
            layer.params_mut()[0].value_mut().data_mut()[flat] = orig - eps;
            let fm = layer.forward(&x, Mode::Eval).unwrap().sum();
            layer.params_mut()[0].value_mut().data_mut()[flat] = orig;
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - wgrad.data()[flat]).abs() < 1e-2);
        }
        // Input gradient check.
        for flat in 0..6 {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut lp = layer.clone();
            let fp = lp.forward(&xp, Mode::Eval).unwrap().sum();
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fm = lp.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - gx.data()[flat]).abs() < 1e-2);
        }
    }

    #[test]
    fn grads_accumulate_across_backwards() {
        let mut layer = Dense::new(2, 2, 1);
        let x = Tensor::ones(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&g).unwrap();
        let after_one = layer.params()[0].grad().clone();
        layer.forward(&x, Mode::Train).unwrap();
        layer.backward(&g).unwrap();
        let after_two = layer.params()[0].grad().clone();
        assert!(after_two.approx_eq(&after_one.scale(2.0), 1e-6));
        layer.zero_grad();
        assert_eq!(layer.params()[0].grad().sum(), 0.0);
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut layer = Dense::new(2, 2, 1);
        layer.forward(&Tensor::ones(&[1, 2]), Mode::Eval).unwrap();
        assert!(layer.backward(&Tensor::ones(&[1, 2])).is_err());
    }

    #[test]
    fn flops_counts_macs() {
        let layer = Dense::new(10, 20, 0);
        let f = layer.flops(&[1, 10]).unwrap();
        assert_eq!(f.forward, 2 * 10 * 20 + 20);
        assert_eq!(f.backward, 2 * f.forward);
    }

    #[test]
    fn clone_box_drops_cache_but_keeps_weights() {
        let mut layer = Dense::new(2, 2, 3);
        layer.forward(&Tensor::ones(&[1, 2]), Mode::Train).unwrap();
        let mut cloned = layer.clone_box();
        assert_eq!(cloned.params()[0].value(), layer.params()[0].value());
        assert!(cloned.backward(&Tensor::ones(&[1, 2])).is_err());
    }
}
