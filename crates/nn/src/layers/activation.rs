use crate::flops::LayerFlops;
use crate::layer::{cache_tensor, Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;

/// Builds a parameter-free elementwise activation layer type.
macro_rules! elementwise_activation {
    (
        $(#[$doc:meta])*
        $name:ident, $label:literal,
        forward: |$x:ident| $fwd:expr,
        backward: |$y:ident, $cached:ident| $bwd:expr
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            cached: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cached: None }
            }
        }

        impl Layer for $name {
            fn name(&self) -> String {
                $label.to_string()
            }

            fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
                let mut ws = Workspace::new();
                self.forward_ws(input, mode, &mut ws)
            }

            fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
                let mut ws = Workspace::new();
                self.backward_ws(grad_out, &mut ws)
            }

            fn forward_ws(
                &mut self,
                input: &Tensor,
                mode: Mode,
                ws: &mut Workspace,
            ) -> Result<Tensor> {
                let mut out = ws.take(input.numel());
                for (o, &$x) in out.iter_mut().zip(input.data()) {
                    *o = $fwd;
                }
                if mode == Mode::Train {
                    // Cache the *input* (ReLU family) — the closures below
                    // decide what they need.
                    cache_tensor(&mut self.cached, input);
                }
                Ok(Tensor::from_vec(out, input.dims())?)
            }

            fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
                let $cached = self
                    .cached
                    .as_ref()
                    .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
                if !$cached.shape().same_dims(grad_out.shape()) {
                    return Err(NnError::Config(format!(
                        "{}: grad shape {:?} does not match cached {:?}",
                        $label,
                        grad_out.dims(),
                        $cached.dims()
                    )));
                }
                let mut out = ws.take(grad_out.numel());
                for ((o, &g), &$y) in out
                    .iter_mut()
                    .zip(grad_out.data())
                    .zip($cached.data())
                {
                    *o = g * $bwd;
                }
                Ok(Tensor::from_vec(out, grad_out.dims())?)
            }

            fn params(&self) -> Vec<&Parameter> {
                Vec::new()
            }

            fn params_mut(&mut self) -> Vec<&mut Parameter> {
                Vec::new()
            }

            fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
                Ok(input_dims.to_vec())
            }

            fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
                let numel: usize = input_dims.iter().skip(1).product();
                Ok(LayerFlops::elementwise(numel as u64))
            }

            fn clone_box(&self) -> Box<dyn Layer> {
                Box::new(Self { cached: None })
            }
        }
    };
}

elementwise_activation!(
    /// Rectified linear unit: `max(0, x)`.
    ///
    /// # Example
    ///
    /// ```
    /// use gsfl_nn::layers::Relu;
    /// use gsfl_nn::layer::{Layer, Mode};
    /// use gsfl_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), gsfl_nn::NnError> {
    /// let mut relu = Relu::new();
    /// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?, Mode::Eval)?;
    /// assert_eq!(y.data(), &[0.0, 2.0]);
    /// # Ok(())
    /// # }
    /// ```
    Relu, "relu",
    forward: |x| x.max(0.0),
    backward: |y, cached| if y > 0.0 { 1.0 } else { 0.0 }
);

elementwise_activation!(
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu, "leaky_relu",
    forward: |x| if x > 0.0 { x } else { 0.01 * x },
    backward: |y, cached| if y > 0.0 { 1.0 } else { 0.01 }
);

/// Logistic sigmoid activation `1 / (1 + e^{-x})`.
///
/// Caches the *output* so the backward pass is `σ'(x) = σ(x)(1-σ(x))`.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates the activation layer.
    pub fn new() -> Self {
        Sigmoid {
            cached_output: None,
        }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> String {
        "sigmoid".to_string()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(input, mode, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let mut out = ws.take(input.numel());
        for (o, &x) in out.iter_mut().zip(input.data()) {
            *o = 1.0 / (1.0 + (-x).exp());
        }
        let out = Tensor::from_vec(out, input.dims())?;
        if mode == Mode::Train {
            cache_tensor(&mut self.cached_output, &out);
        }
        Ok(out)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        let mut out = ws.take(grad_out.numel());
        for ((o, &g), &s) in out.iter_mut().zip(grad_out.data()).zip(y.data()) {
            *o = g * (s * (1.0 - s));
        }
        Ok(Tensor::from_vec(out, grad_out.dims())?)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let numel: usize = input_dims.iter().skip(1).product();
        // exp + div ≈ 4 flops each direction, elementwise.
        Ok(LayerFlops::elementwise(4 * numel as u64))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Sigmoid {
            cached_output: None,
        })
    }
}

/// Hyperbolic tangent activation.
///
/// Caches the *output*: `tanh'(x) = 1 - tanh²(x)`.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates the activation layer.
    pub fn new() -> Self {
        Tanh {
            cached_output: None,
        }
    }
}

impl Layer for Tanh {
    fn name(&self) -> String {
        "tanh".to_string()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(input, mode, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let mut out = ws.take(input.numel());
        for (o, &x) in out.iter_mut().zip(input.data()) {
            *o = x.tanh();
        }
        let out = Tensor::from_vec(out, input.dims())?;
        if mode == Mode::Train {
            cache_tensor(&mut self.cached_output, &out);
        }
        Ok(out)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        let mut out = ws.take(grad_out.numel());
        for ((o, &g), &t) in out.iter_mut().zip(grad_out.data()).zip(y.data()) {
            *o = g * (1.0 - t * t);
        }
        Ok(Tensor::from_vec(out, grad_out.dims())?)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let numel: usize = input_dims.iter().skip(1).product();
        Ok(LayerFlops::elementwise(4 * numel as u64))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Tanh {
            cached_output: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 1.5], &[1, 4]).unwrap();
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 1.5]);
        let g = relu.backward(&Tensor::ones(&[1, 4])).unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_grad() {
        let mut l = LeakyRelu::new();
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert!((y.data()[0] + 0.01).abs() < 1e-7);
        let g = l.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert!((g.data()[0] - 0.01).abs() < 1e-7);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn sigmoid_gradient_matches_fd() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        s.forward(&x, Mode::Train).unwrap();
        let g = s.backward(&Tensor::ones(&[1, 3])).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut sp = Sigmoid::new();
            let fp = sp.forward(&xp, Mode::Eval).unwrap().sum();
            let fm = sp.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn tanh_gradient_matches_fd() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-0.7, 0.3], &[1, 2]).unwrap();
        t.forward(&x, Mode::Train).unwrap();
        let g = t.backward(&Tensor::ones(&[1, 2])).unwrap();
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut tt = Tanh::new();
            let fp = tt.forward(&xp, Mode::Eval).unwrap().sum();
            let fm = tt.forward(&xm, Mode::Eval).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!((fd - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Sigmoid::new().param_count(), 0);
    }

    #[test]
    fn backward_shape_mismatch_rejected() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::zeros(&[1, 4]), Mode::Train).unwrap();
        assert!(relu.backward(&Tensor::zeros(&[1, 5])).is_err());
    }
}
