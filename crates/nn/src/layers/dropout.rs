use crate::flops::LayerFlops;
use crate::layer::{Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::rng::seeded_rng;
use gsfl_tensor::Tensor;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`; evaluation is
/// the identity.
///
/// The mask stream is seeded so training runs stay reproducible.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: ChaCha8Rng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)` — this is a construction-time
    /// programming error, not a runtime condition.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout {
            p,
            rng: seeded_rng(seed),
            mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> String {
        format!("dropout(p={})", self.p)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => Ok(input.clone()),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask = Tensor::from_fn(input.dims(), |_| {
                    if self.rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    }
                });
                let out = input.mul(&mask)?;
                self.mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        Ok(grad_out.mul(mask)?)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let numel: usize = input_dims.iter().skip(1).product();
        Ok(LayerFlops::elementwise(numel as u64))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Dropout {
            mask: None,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_fn(&[4, 8], |i| i as f32);
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "zeros = {zeros}");
        // Survivors are scaled to keep the expectation.
        let nonzero = y.data().iter().find(|&&v| v != 0.0).unwrap();
        assert!((nonzero - 2.0).abs() < 1e-6);
    }

    #[test]
    fn backward_reuses_mask() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(&[1, 100])).unwrap();
        // Gradient must be zero exactly where the output was zero.
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout p must be in [0,1)")]
    fn rejects_invalid_p() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let x = Tensor::ones(&[1, 64]);
        let mut a = Dropout::new(0.5, 9);
        let mut b = Dropout::new(0.5, 9);
        assert_eq!(
            a.forward(&x, Mode::Train).unwrap(),
            b.forward(&x, Mode::Train).unwrap()
        );
    }
}
