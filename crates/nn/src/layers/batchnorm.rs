use crate::flops::LayerFlops;
use crate::layer::{Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::Tensor;

/// Batch normalization over the channel axis of NCHW tensors.
///
/// Training mode normalizes with batch statistics and updates exponential
/// running averages; evaluation mode uses the running averages. Gamma and
/// beta are trainable.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Tensor,
    running_var: Tensor,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new(Tensor::ones(&[channels])),
            beta: Parameter::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// The tracked running mean (one per channel).
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The tracked running variance (one per channel).
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    fn check_input(&self, dims: &[usize]) -> Result<(usize, usize, usize, usize)> {
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::Config(format!(
                "batchnorm2d expects [n×{}×h×w], got {dims:?}",
                self.channels
            )));
        }
        Ok((dims[0], dims[1], dims[2], dims[3]))
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> String {
        format!("batchnorm2d({})", self.channels)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (n, c, h, w) = self.check_input(input.dims())?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let data = input.data();
        let mut out = vec![0.0f32; input.numel()];

        match mode {
            Mode::Train => {
                let mut x_hat = vec![0.0f32; input.numel()];
                let mut inv_stds = vec![0.0f32; c];
                #[allow(clippy::needless_range_loop)] // ch indexes 4 parallel arrays
                for ch in 0..c {
                    let mut mean = 0.0f32;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        mean += data[base..base + plane].iter().sum::<f32>();
                    }
                    mean /= count;
                    let mut var = 0.0f32;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        var += data[base..base + plane]
                            .iter()
                            .map(|&x| (x - mean) * (x - mean))
                            .sum::<f32>();
                    }
                    var /= count;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[ch] = inv_std;
                    let g = self.gamma.value().data()[ch];
                    let b = self.beta.value().data()[ch];
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in 0..plane {
                            let xh = (data[base + i] - mean) * inv_std;
                            x_hat[base + i] = xh;
                            out[base + i] = g * xh + b;
                        }
                    }
                    // Exponential running averages for eval mode.
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                }
                self.cache = Some(BnCache {
                    x_hat: Tensor::from_vec(x_hat, input.dims())?,
                    inv_std: inv_stds,
                    input_dims: input.dims().to_vec(),
                });
            }
            Mode::Eval => {
                for ch in 0..c {
                    let mean = self.running_mean.data()[ch];
                    let inv_std = 1.0 / (self.running_var.data()[ch] + self.eps).sqrt();
                    let g = self.gamma.value().data()[ch];
                    let b = self.beta.value().data()[ch];
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in 0..plane {
                            out[base + i] = g * (data[base + i] - mean) * inv_std + b;
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(out, input.dims())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        if grad_out.dims() != cache.input_dims.as_slice() {
            return Err(NnError::Config(format!(
                "batchnorm backward: grad dims {:?} vs cached {:?}",
                grad_out.dims(),
                cache.input_dims
            )));
        }
        let (n, c, h, w) = self.check_input(grad_out.dims())?;
        let plane = h * w;
        let m = (n * plane) as f32;
        let go = grad_out.data();
        let xh = cache.x_hat.data();
        let mut grad_in = vec![0.0f32; grad_out.numel()];

        for ch in 0..c {
            // Reductions over the channel: Σ dy and Σ dy·x̂.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in 0..plane {
                    sum_dy += go[base + i];
                    sum_dy_xhat += go[base + i] * xh[base + i];
                }
            }
            self.gamma.grad_mut().data_mut()[ch] += sum_dy_xhat;
            self.beta.grad_mut().data_mut()[ch] += sum_dy;

            let g = self.gamma.value().data()[ch];
            let inv_std = cache.inv_std[ch];
            // dx = (g·inv_std/m)·(m·dy − Σdy − x̂·Σ(dy·x̂))
            let k = g * inv_std / m;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in 0..plane {
                    grad_in[base + i] =
                        k * (m * go[base + i] - sum_dy - xh[base + i] * sum_dy_xhat);
                }
            }
        }
        Ok(Tensor::from_vec(grad_in, grad_out.dims())?)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        self.check_input(input_dims)?;
        Ok(input_dims.to_vec())
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        self.check_input(input_dims)?;
        let numel: usize = input_dims.iter().skip(1).product();
        // Normalize + scale + shift ≈ 4 flops per element.
        Ok(LayerFlops::elementwise(4 * numel as u64))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(BatchNorm2d {
            cache: None,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::from_fn(&[4, 2, 3, 3], |i| (i as f32) * 0.5 - 9.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1 after normalization (gamma=1, beta=0).
        let plane = 9;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for s in 0..4 {
                let base = (s * 2 + ch) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        // Before any training step the running stats are (0, 1).
        let y = bn.forward(&x, Mode::Eval).unwrap();
        assert!(y.data().iter().all(|&v| (v - 10.0).abs() < 1e-3));
        // After training forwards the running mean moves toward 10.
        for _ in 0..50 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        assert!(bn.running_mean().data()[0] > 9.0);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_fn(&[2, 1, 2, 2], |i| (i as f32) * 0.7 - 2.0);
        bn.forward(&x, Mode::Train).unwrap();
        let gx = bn.backward(&Tensor::ones(&[2, 1, 2, 2])).unwrap();
        let eps = 1e-2f32;
        for flat in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut bp = BatchNorm2d::new(1);
            let fp = bp.forward(&xp, Mode::Train).unwrap().sum();
            let fm = bp.forward(&xm, Mode::Train).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[flat]).abs() < 5e-2,
                "bn grad mismatch at {flat}: fd={fd} analytic={}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Train)
            .is_err());
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_fn(&[1, 1, 2, 2], |i| i as f32);
        bn.forward(&x, Mode::Train).unwrap();
        bn.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        // dβ = Σ dy = 4; dγ = Σ dy·x̂ ≈ 0 for symmetric x̂.
        assert!((bn.params()[1].grad().data()[0] - 4.0).abs() < 1e-5);
        assert!(bn.params()[0].grad().data()[0].abs() < 1e-4);
    }
}
