//! Concrete layer implementations.

mod activation;
mod batchnorm;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{AvgPool2d, MaxPool2d};
