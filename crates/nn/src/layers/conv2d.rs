use crate::flops::LayerFlops;
use crate::layer::{cache_tensor, Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::conv::{
    conv2d_backward_from_cols, conv2d_backward_params_from_cols, conv2d_backward_ws,
    conv2d_forward_ws, conv2d_forward_ws_cols, ConvGeom,
};
use gsfl_tensor::init::Init;
use gsfl_tensor::rng::seeded_rng;
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::{kernel_mode, KernelMode, Tensor};

/// 2-D convolution layer over NCHW batches.
///
/// # Example
///
/// ```
/// use gsfl_nn::layers::Conv2d;
/// use gsfl_nn::layer::{Layer, Mode};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 42); // "same" conv
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Train)?;
/// assert_eq!(y.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Parameter,
    bias: Parameter,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    /// Training-mode input cache (reference-kernel path only — the fast
    /// path caches the lowered column matrix instead).
    cached_input: Option<Tensor>,
    /// Training-mode im2col cache: the forward pass's lowering is reused
    /// verbatim by the backward pass.
    cached_cols: Option<Tensor>,
    /// Input dims matching `cached_cols`.
    cached_dims: Option<Vec<usize>>,
}

impl Conv2d {
    /// Creates a conv layer with a square `kernel`, He-normal initialized.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let mut rng = seeded_rng(seed);
        let fan_in = in_channels * kernel * kernel;
        let weight = Init::HeNormal { fan_in }
            .tensor(&[out_channels, in_channels, kernel, kernel], &mut rng);
        Conv2d {
            weight: Parameter::new(weight),
            bias: Parameter::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            cached_input: None,
            cached_cols: None,
            cached_dims: None,
        }
    }

    fn geom(&self, h: usize, w: usize) -> Result<ConvGeom> {
        Ok(ConvGeom::new(
            h,
            w,
            self.kernel,
            self.kernel,
            self.stride,
            self.pad,
        )?)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> String {
        format!(
            "conv2d({}→{},{k}×{k},s{},p{})",
            self.in_channels,
            self.out_channels,
            self.stride,
            self.pad,
            k = self.kernel
        )
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(input, mode, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        if mode == Mode::Train && kernel_mode() == KernelMode::Fast {
            // Fast path: keep the batch lowering for the backward pass.
            let (y, cols) = conv2d_forward_ws_cols(
                input,
                self.weight.value(),
                self.bias.value(),
                self.stride,
                self.pad,
                ws,
            )?;
            if let Some(old) = self.cached_cols.take() {
                ws.recycle(old);
            }
            self.cached_cols = Some(cols);
            let dims = self.cached_dims.get_or_insert_with(Vec::new);
            dims.clear();
            dims.extend_from_slice(input.dims());
            self.cached_input = None;
            return Ok(y);
        }
        let y = conv2d_forward_ws(
            input,
            self.weight.value(),
            self.bias.value(),
            self.stride,
            self.pad,
            ws,
        )?;
        if mode == Mode::Train {
            cache_tensor(&mut self.cached_input, input);
            self.cached_cols = None;
        }
        Ok(y)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let (gx, gw, gb) = if let (Some(cols), Some(dims)) =
            (self.cached_cols.as_ref(), self.cached_dims.as_ref())
        {
            conv2d_backward_from_cols(
                dims,
                cols,
                self.weight.value(),
                grad_out,
                self.stride,
                self.pad,
                ws,
            )?
        } else {
            let input = self
                .cached_input
                .as_ref()
                .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
            conv2d_backward_ws(
                input,
                self.weight.value(),
                grad_out,
                self.stride,
                self.pad,
                ws,
            )?
        };
        self.weight.grad_mut().add_assign_t(&gw)?;
        self.bias.grad_mut().add_assign_t(&gb)?;
        ws.recycle(gw);
        ws.recycle(gb);
        Ok(gx)
    }

    fn backward_ws_last(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<()> {
        if let (Some(cols), Some(dims)) = (self.cached_cols.as_ref(), self.cached_dims.as_ref()) {
            let (gw, gb) = conv2d_backward_params_from_cols(
                dims,
                cols,
                self.weight.value(),
                grad_out,
                self.stride,
                self.pad,
                ws,
            )?;
            self.weight.grad_mut().add_assign_t(&gw)?;
            self.bias.grad_mut().add_assign_t(&gb)?;
            ws.recycle(gw);
            ws.recycle(gb);
            return Ok(());
        }
        let g = self.backward_ws(grad_out, ws)?;
        ws.recycle(g);
        Ok(())
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 4 || input_dims[1] != self.in_channels {
            return Err(NnError::Config(format!(
                "conv2d expects [n×{}×h×w], got {input_dims:?}",
                self.in_channels
            )));
        }
        let g = self.geom(input_dims[2], input_dims[3])?;
        Ok(vec![input_dims[0], self.out_channels, g.out_h, g.out_w])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let out = self.output_shape(input_dims)?;
        let macs = (self.in_channels * self.kernel * self.kernel) as u64
            * self.out_channels as u64
            * (out[2] * out[3]) as u64;
        Ok(LayerFlops::gemm(
            2 * macs + (out[1] * out[2] * out[3]) as u64,
        ))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Conv2d {
            cached_input: None,
            cached_cols: None,
            cached_dims: None,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_same_padding() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, 0);
        assert_eq!(
            conv.output_shape(&[2, 3, 16, 16]).unwrap(),
            vec![2, 8, 16, 16]
        );
        assert!(conv.output_shape(&[2, 4, 16, 16]).is_err());
    }

    #[test]
    fn forward_backward_shapes() {
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, 1);
        let x = Tensor::from_fn(&[2, 2, 6, 6], |i| (i as f32 % 7.0) - 3.0);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4, 6, 6]);
        let gx = conv.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        // bias grad = number of output pixels per channel × batch
        let gb = conv.params()[1].grad().clone();
        assert!(gb.data().iter().all(|&g| (g - 72.0).abs() < 1e-3));
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0);
        assert!(matches!(
            conv.backward(&Tensor::zeros(&[1, 1, 4, 4])),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn flops_scale_with_spatial_size() {
        let conv = Conv2d::new(3, 16, 3, 1, 1, 0);
        let small = conv.flops(&[1, 3, 8, 8]).unwrap();
        let large = conv.flops(&[1, 3, 16, 16]).unwrap();
        assert_eq!(large.forward, small.forward * 4);
    }

    #[test]
    fn param_count() {
        let conv = Conv2d::new(3, 16, 3, 1, 1, 0);
        assert_eq!(conv.param_count(), 3 * 16 * 9 + 16);
    }
}
