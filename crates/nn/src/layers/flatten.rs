use crate::flops::LayerFlops;
use crate::layer::{Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::Tensor;

/// Flattens `[n, d1, d2, …]` to `[n, d1·d2·…]` — the bridge between the
/// convolutional trunk and the dense head.
///
/// # Example
///
/// ```
/// use gsfl_nn::layers::Flatten;
/// use gsfl_nn::layer::{Layer, Mode};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(&[2, 4, 3, 3]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 36]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            cached_input_dims: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> String {
        "flatten".to_string()
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let dims = self.output_shape(input.dims())?;
        if mode == Mode::Train {
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        Ok(input.reshape(&dims)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        Ok(grad_out.reshape(dims)?)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.is_empty() {
            return Err(NnError::Config("flatten needs a batch dimension".into()));
        }
        Ok(vec![input_dims[0], input_dims[1..].iter().product()])
    }

    fn flops(&self, _input_dims: &[usize]) -> Result<LayerFlops> {
        Ok(LayerFlops::zero())
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Flatten {
            cached_input_dims: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_data() {
        let mut f = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = f.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let gx = f.backward(&y).unwrap();
        assert_eq!(gx, x);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 12])).is_err());
    }
}
