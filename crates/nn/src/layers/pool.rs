use crate::flops::LayerFlops;
use crate::layer::{Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::pool::{
    avgpool2d_backward_ws, avgpool2d_forward_ws, maxpool2d_backward_ws, maxpool2d_forward_ws,
};
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;

/// Max-pooling layer over square windows.
///
/// # Example
///
/// ```
/// use gsfl_nn::layers::MaxPool2d;
/// use gsfl_nn::layer::{Layer, Mode};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 4, 8, 8]), Mode::Eval)?;
/// assert_eq!(y.dims(), &[1, 4, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    /// Argmax table of the last forward; reused across steps so the
    /// steady-state training loop performs no allocation here.
    argmax: Vec<usize>,
    /// Input dims of the last [`Mode::Train`] forward (`None` until then).
    cached_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pool with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        MaxPool2d {
            window,
            stride,
            argmax: Vec::new(),
            cached_dims: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> String {
        format!("maxpool2d({}×{0},s{})", self.window, self.stride)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(input, mode, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let out = maxpool2d_forward_ws(input, self.window, self.stride, ws, &mut self.argmax)?;
        self.cached_dims = if mode == Mode::Train {
            match self.cached_dims.take() {
                Some(mut dims) => {
                    dims.clear();
                    dims.extend_from_slice(input.dims());
                    Some(dims)
                }
                None => Some(input.dims().to_vec()),
            }
        } else {
            None
        };
        Ok(out)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let in_dims = self
            .cached_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        Ok(maxpool2d_backward_ws(grad_out, &self.argmax, in_dims, ws)?)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 4 {
            return Err(NnError::Config(format!(
                "maxpool2d expects NCHW, got {input_dims:?}"
            )));
        }
        let g = gsfl_tensor::conv::ConvGeom::new(
            input_dims[2],
            input_dims[3],
            self.window,
            self.window,
            self.stride,
            0,
        )?;
        Ok(vec![input_dims[0], input_dims[1], g.out_h, g.out_w])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let out = self.output_shape(input_dims)?;
        let comparisons = (out[1] * out[2] * out[3]) as u64 * (self.window * self.window) as u64;
        Ok(LayerFlops::elementwise(comparisons))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(MaxPool2d {
            argmax: Vec::new(),
            cached_dims: None,
            ..self.clone()
        })
    }
}

/// Average-pooling layer over square windows.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    window: usize,
    stride: usize,
    cached_input_dims: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool with the given window and stride.
    pub fn new(window: usize, stride: usize) -> Self {
        AvgPool2d {
            window,
            stride,
            cached_input_dims: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> String {
        format!("avgpool2d({}×{0},s{})", self.window, self.stride)
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.forward_ws(input, mode, &mut ws)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut ws = Workspace::new();
        self.backward_ws(grad_out, &mut ws)
    }

    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let out = avgpool2d_forward_ws(input, self.window, self.stride, ws)?;
        if mode == Mode::Train {
            self.cached_input_dims = Some(input.dims().to_vec());
        }
        Ok(out)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let dims = self
            .cached_input_dims
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward { layer: self.name() })?;
        Ok(avgpool2d_backward_ws(
            grad_out,
            dims,
            self.window,
            self.stride,
            ws,
        )?)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        if input_dims.len() != 4 {
            return Err(NnError::Config(format!(
                "avgpool2d expects NCHW, got {input_dims:?}"
            )));
        }
        let g = gsfl_tensor::conv::ConvGeom::new(
            input_dims[2],
            input_dims[3],
            self.window,
            self.window,
            self.stride,
            0,
        )?;
        Ok(vec![input_dims[0], input_dims[1], g.out_h, g.out_w])
    }

    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let out = self.output_shape(input_dims)?;
        let adds = (out[1] * out[2] * out[3]) as u64 * (self.window * self.window) as u64;
        Ok(LayerFlops::elementwise(adds))
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(AvgPool2d {
            cached_input_dims: None,
            ..self.clone()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_halves_spatial_dims() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| i as f32);
        let y = p.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
        let gx = p.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gx.sum(), 8.0); // one unit per output element
    }

    #[test]
    fn avgpool_forward_backward() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = p.forward(&x, Mode::Train).unwrap();
        assert!(y.data().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        let gx = p.backward(&Tensor::ones(y.dims())).unwrap();
        assert!((gx.sum() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut p = MaxPool2d::new(2, 2);
        assert!(p.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
        let mut a = AvgPool2d::new(2, 2);
        assert!(a.backward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn output_shape_rejects_non_nchw() {
        assert!(MaxPool2d::new(2, 2).output_shape(&[4, 4]).is_err());
    }
}
