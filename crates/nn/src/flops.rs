//! Floating-point operation accounting.
//!
//! The wireless latency model charges `flops / device_rate` seconds for
//! each computation, so every layer reports an estimate of its forward and
//! backward cost per sample. The estimates use the standard conventions:
//! a multiply-accumulate counts as 2 FLOPs, and a backward pass through a
//! GEMM-shaped layer costs roughly twice its forward pass (one GEMM for the
//! input gradient, one for the weight gradient).

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::Add;

/// Forward/backward FLOPs per sample for one layer (or a sum of layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerFlops {
    /// Forward-pass FLOPs per sample.
    pub forward: u64,
    /// Backward-pass FLOPs per sample.
    pub backward: u64,
}

impl LayerFlops {
    /// A cost of zero (identity-ish layers).
    pub fn zero() -> Self {
        LayerFlops::default()
    }

    /// A layer whose backward pass costs twice its forward pass — the GEMM
    /// convention.
    pub fn gemm(forward: u64) -> Self {
        LayerFlops {
            forward,
            backward: forward * 2,
        }
    }

    /// An elementwise layer: backward costs the same as forward.
    pub fn elementwise(forward: u64) -> Self {
        LayerFlops {
            forward,
            backward: forward,
        }
    }

    /// Total of forward and backward.
    pub fn total(&self) -> u64 {
        self.forward + self.backward
    }

    /// Scales both directions by a sample count.
    pub fn for_batch(&self, batch: usize) -> LayerFlops {
        LayerFlops {
            forward: self.forward * batch as u64,
            backward: self.backward * batch as u64,
        }
    }
}

impl Add for LayerFlops {
    type Output = LayerFlops;

    fn add(self, rhs: LayerFlops) -> LayerFlops {
        LayerFlops {
            forward: self.forward + rhs.forward,
            backward: self.backward + rhs.backward,
        }
    }
}

impl Sum for LayerFlops {
    fn sum<I: Iterator<Item = LayerFlops>>(iter: I) -> Self {
        iter.fold(LayerFlops::zero(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_backward_is_double() {
        let f = LayerFlops::gemm(100);
        assert_eq!(f.backward, 200);
        assert_eq!(f.total(), 300);
    }

    #[test]
    fn sum_and_batch_scale() {
        let total: LayerFlops = [LayerFlops::gemm(10), LayerFlops::elementwise(5)]
            .into_iter()
            .sum();
        assert_eq!(total.forward, 15);
        assert_eq!(total.backward, 25);
        let batched = total.for_batch(4);
        assert_eq!(batched.forward, 60);
        assert_eq!(batched.backward, 100);
    }
}
