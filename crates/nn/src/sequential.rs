use crate::flops::LayerFlops;
use crate::layer::{Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;

/// A pipeline of layers executed in order.
///
/// `Sequential` is the network representation used throughout the GSFL
/// stack. It supports:
///
/// * forward/backward over the whole pipeline,
/// * splitting into client-side and server-side halves at a cut index
///   (see [`crate::split::SplitNetwork`]),
/// * parameter iteration for optimizers and FedAvg aggregation,
/// * FLOPs and byte accounting for the latency model.
///
/// # Example
///
/// ```
/// use gsfl_nn::{Sequential, layers::{Dense, Relu}};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, 1));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, 2));
/// let y = net.forward(&Tensor::zeros(&[3, 4]))?;
/// assert_eq!(y.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    mode: Mode,
    /// Scratch pool shared by the layers: intermediate activations and
    /// gradients are recycled here between layers, so a steady-state
    /// training step performs no heap allocation inside the network.
    ws: Workspace,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential {
            layers: self.layers.clone(),
            mode: self.mode,
            ws: Workspace::new(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("mode", &self.mode)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network in training mode.
    pub fn new() -> Self {
        Sequential {
            layers: Vec::new(),
            mode: Mode::Train,
            ws: Workspace::new(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (useful for picking a cut index).
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Sets train/eval mode for subsequent forwards.
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Runs the pipeline forward. Intermediate activations draw from (and
    /// are recycled into) the network's internal [`Workspace`]; the
    /// returned tensor owns a workspace buffer, which callers on the hot
    /// path can hand back with [`Sequential::recycle`] once consumed.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (usually a shape mismatch).
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mode = self.mode;
        if gsfl_tensor::kernel_mode() == gsfl_tensor::KernelMode::Reference {
            // Faithful pre-optimization engine for benchmark baselines:
            // clone-per-layer, no buffer recycling.
            let mut x = input.clone();
            for layer in &mut self.layers {
                x = layer.forward(&x, mode)?;
            }
            return Ok(x);
        }
        let mut x: Option<Tensor> = None;
        for layer in &mut self.layers {
            let y = match &x {
                Some(t) => layer.forward_ws(t, mode, &mut self.ws)?,
                None => layer.forward_ws(input, mode, &mut self.ws)?,
            };
            if let Some(consumed) = x.take() {
                self.ws.recycle(consumed);
            }
            x = Some(y);
        }
        Ok(match x {
            Some(out) => out,
            None => input.clone(),
        })
    }

    /// Propagates a gradient backward through the pipeline, accumulating
    /// parameter gradients, and returns the gradient at the input (again
    /// a workspace-owned buffer — see [`Sequential::forward`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if a layer has no cached
    /// activation (i.e. `forward` was not run in [`Mode::Train`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        if gsfl_tensor::kernel_mode() == gsfl_tensor::KernelMode::Reference {
            let mut g = grad_out.clone();
            for layer in self.layers.iter_mut().rev() {
                g = layer.backward(&g)?;
            }
            return Ok(g);
        }
        let mut g: Option<Tensor> = None;
        for layer in self.layers.iter_mut().rev() {
            let next = match &g {
                Some(t) => layer.backward_ws(t, &mut self.ws)?,
                None => layer.backward_ws(grad_out, &mut self.ws)?,
            };
            if let Some(consumed) = g.take() {
                self.ws.recycle(consumed);
            }
            g = Some(next);
        }
        Ok(match g {
            Some(out) => out,
            None => grad_out.clone(),
        })
    }

    /// [`Sequential::backward`] for callers that do not consume the
    /// network's input gradient — i.e. every training loop, where the
    /// gradient below the first layer is dead. The first layer only
    /// accumulates its parameter gradients ([`Layer::backward_ws_last`]),
    /// skipping an entire GEMM (+ col2im for convolutions) per step.
    /// Parameter gradients are identical to [`Sequential::backward`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sequential::backward`].
    pub fn backward_no_input_grad(&mut self, grad_out: &Tensor) -> Result<()> {
        if gsfl_tensor::kernel_mode() == gsfl_tensor::KernelMode::Reference {
            // The pre-optimization engine always computed the dead
            // gradient; keep the baseline faithful.
            let g = self.backward(grad_out)?;
            drop(g);
            return Ok(());
        }
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return Ok(());
        };
        let mut g: Option<Tensor> = None;
        for layer in rest.iter_mut().rev() {
            let next = match &g {
                Some(t) => layer.backward_ws(t, &mut self.ws)?,
                None => layer.backward_ws(grad_out, &mut self.ws)?,
            };
            if let Some(consumed) = g.take() {
                self.ws.recycle(consumed);
            }
            g = Some(next);
        }
        match &g {
            Some(t) => first.backward_ws_last(t, &mut self.ws)?,
            None => first.backward_ws_last(grad_out, &mut self.ws)?,
        }
        if let Some(consumed) = g.take() {
            self.ws.recycle(consumed);
        }
        Ok(())
    }

    /// Returns a tensor's backing buffer to the network's scratch pool.
    /// Call this with tensors the network produced (smashed data, logits,
    /// input gradients) once they are dead to keep the training loop
    /// allocation-free; dropping them instead is always safe, just slower.
    pub fn recycle(&mut self, tensor: Tensor) {
        self.ws.recycle(tensor);
    }

    /// Fresh heap allocations the internal workspace has performed (a
    /// steady-state training loop stops increasing this after warm-up).
    pub fn workspace_fresh_allocs(&self) -> usize {
        self.ws.fresh_allocs()
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Immutable parameter views, layer order then within-layer order.
    pub fn params(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable parameter views, same order as [`Sequential::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Wire size of the parameters in bytes (4 bytes per scalar).
    pub fn param_bytes(&self) -> u64 {
        4 * self.param_count() as u64
    }

    /// Output dims after the whole pipeline for the given input dims.
    ///
    /// # Errors
    ///
    /// Propagates shape incompatibilities.
    pub fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let mut dims = input_dims.to_vec();
        for layer in &self.layers {
            dims = layer.output_shape(&dims)?;
        }
        Ok(dims)
    }

    /// Per-sample FLOPs summed over all layers for the given input dims.
    ///
    /// # Errors
    ///
    /// Propagates shape incompatibilities.
    pub fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let mut dims = input_dims.to_vec();
        let mut total = LayerFlops::zero();
        for layer in &self.layers {
            total = total + layer.flops(&dims)?;
            dims = layer.output_shape(&dims)?;
        }
        Ok(total)
    }

    /// Splits the network at `cut`: the first `cut` layers become the first
    /// returned network, the rest the second. Parameters move, caches drop.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidCut`] when `cut > depth`.
    pub fn split_at(self, cut: usize) -> Result<(Sequential, Sequential)> {
        if cut > self.layers.len() {
            return Err(NnError::InvalidCut {
                cut,
                depth: self.layers.len(),
            });
        }
        let mut layers = self.layers;
        let tail = layers.split_off(cut);
        Ok((
            Sequential {
                layers,
                mode: self.mode,
                ws: Workspace::new(),
            },
            Sequential {
                layers: tail,
                mode: self.mode,
                ws: Workspace::new(),
            },
        ))
    }

    /// Concatenates two halves back into one network (inverse of
    /// [`Sequential::split_at`]).
    pub fn join(front: Sequential, back: Sequential) -> Sequential {
        let mut layers = front.layers;
        layers.extend(back.layers);
        Sequential {
            layers,
            mode: front.mode,
            ws: Workspace::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn small_net() -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, 2));
        net
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = small_net();
        let x = Tensor::from_fn(&[4, 3], |i| (i as f32) * 0.1);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        let gx = net.backward(&Tensor::ones(&[4, 2])).unwrap();
        assert_eq!(gx.dims(), &[4, 3]);
    }

    #[test]
    fn split_then_join_preserves_function() {
        let mut whole = small_net();
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.2 - 0.3);
        let y_whole = whole.forward(&x).unwrap();

        let (mut client, mut server) = small_net().split_at(2).unwrap();
        assert_eq!(client.depth(), 2);
        assert_eq!(server.depth(), 1);
        let smashed = client.forward(&x).unwrap();
        let y_split = server.forward(&smashed).unwrap();
        assert!(y_split.approx_eq(&y_whole, 1e-6));

        let mut rejoined = Sequential::join(client, server);
        assert_eq!(rejoined.depth(), 3);
        assert!(rejoined.forward(&x).unwrap().approx_eq(&y_whole, 1e-6));
    }

    #[test]
    fn split_rejects_out_of_range() {
        assert!(matches!(
            small_net().split_at(4),
            Err(NnError::InvalidCut { cut: 4, depth: 3 })
        ));
        // Degenerate cuts at 0 and depth are allowed.
        assert!(small_net().split_at(0).is_ok());
        assert!(small_net().split_at(3).is_ok());
    }

    #[test]
    fn param_count_and_bytes() {
        let net = small_net();
        let expect = (3 * 5 + 5) + (5 * 2 + 2);
        assert_eq!(net.param_count(), expect);
        assert_eq!(net.param_bytes(), 4 * expect as u64);
    }

    #[test]
    fn output_shape_and_flops_propagate() {
        let net = small_net();
        assert_eq!(net.output_shape(&[7, 3]).unwrap(), vec![7, 2]);
        let f = net.flops(&[1, 3]).unwrap();
        assert!(f.forward > 0 && f.backward > f.forward);
        assert!(net.output_shape(&[7, 9]).is_err());
    }

    #[test]
    fn gradient_flow_through_whole_net_matches_fd() {
        let mut net = small_net();
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.3 - 0.5);
        net.forward(&x).unwrap();
        let gx = net.backward(&Tensor::ones(&[2, 2])).unwrap();
        let eps = 1e-2f32;
        for flat in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut net2 = net.clone();
            net2.set_mode(Mode::Eval);
            let fp = net2.forward(&xp).unwrap().sum();
            let fm = net2.forward(&xm).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[flat]).abs() < 2e-2,
                "fd {fd} vs analytic {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn clone_shares_nothing() {
        let mut a = small_net();
        let b = a.clone();
        // Mutating a's parameters must not affect b.
        a.params_mut()[0].value_mut().fill(0.0);
        assert_ne!(a.params()[0].value().data(), b.params()[0].value().data());
    }

    #[test]
    fn debug_lists_layer_names() {
        let net = small_net();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("dense(3→5)"));
        assert!(dbg.contains("relu"));
    }

    #[test]
    fn backward_no_input_grad_accumulates_same_param_grads() {
        let x = Tensor::from_fn(&[4, 3], |i| (i as f32) * 0.17 - 0.2);
        let g = Tensor::from_fn(&[4, 2], |i| (i as f32) * 0.09 - 0.1);
        let mut full = small_net();
        full.forward(&x).unwrap();
        full.backward(&g).unwrap();
        let mut skipped = small_net();
        skipped.forward(&x).unwrap();
        skipped.backward_no_input_grad(&g).unwrap();
        for (pf, ps) in full.params().iter().zip(skipped.params()) {
            assert_eq!(
                pf.grad().data(),
                ps.grad().data(),
                "skipping the dead input gradient must not change parameter grads"
            );
        }
    }

    #[test]
    fn steady_state_training_step_is_allocation_free() {
        use crate::layers::{Conv2d, Flatten, MaxPool2d};
        // A conv stack — the layers with the heaviest scratch usage.
        let mut net = Sequential::new();
        net.push(Conv2d::new(2, 4, 3, 1, 1, 1));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Flatten::new());
        net.push(Dense::new(4 * 3 * 3, 5, 2));
        let x = Tensor::from_fn(&[4, 2, 6, 6], |i| ((i * 13 % 31) as f32 - 15.0) * 0.05);
        let step = |net: &mut Sequential| {
            net.zero_grad();
            let y = net.forward(&x).unwrap();
            let g = Tensor::ones(y.dims());
            net.recycle(y);
            net.backward_no_input_grad(&g).unwrap();
        };
        step(&mut net);
        step(&mut net);
        let warm = net.workspace_fresh_allocs();
        for _ in 0..3 {
            step(&mut net);
        }
        assert_eq!(
            net.workspace_fresh_allocs(),
            warm,
            "training steps must stop allocating after warm-up"
        );
    }
}
