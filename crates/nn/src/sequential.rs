use crate::flops::LayerFlops;
use crate::layer::{Layer, Mode};
use crate::{NnError, Parameter, Result};
use gsfl_tensor::Tensor;

/// A pipeline of layers executed in order.
///
/// `Sequential` is the network representation used throughout the GSFL
/// stack. It supports:
///
/// * forward/backward over the whole pipeline,
/// * splitting into client-side and server-side halves at a cut index
///   (see [`crate::split::SplitNetwork`]),
/// * parameter iteration for optimizers and FedAvg aggregation,
/// * FLOPs and byte accounting for the latency model.
///
/// # Example
///
/// ```
/// use gsfl_nn::{Sequential, layers::{Dense, Relu}};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, 1));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, 2));
/// let y = net.forward(&Tensor::zeros(&[3, 4]))?;
/// assert_eq!(y.dims(), &[3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    mode: Mode,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential {
            layers: self.layers.clone(),
            mode: self.mode,
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .field("mode", &self.mode)
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network in training mode.
    pub fn new() -> Self {
        Sequential {
            layers: Vec::new(),
            mode: Mode::Train,
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (useful for picking a cut index).
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Sets train/eval mode for subsequent forwards.
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Runs the pipeline forward.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (usually a shape mismatch).
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let mode = self.mode;
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    /// Propagates a gradient backward through the pipeline, accumulating
    /// parameter gradients, and returns the gradient at the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if a layer has no cached
    /// activation (i.e. `forward` was not run in [`Mode::Train`]).
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Immutable parameter views, layer order then within-layer order.
    pub fn params(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable parameter views, same order as [`Sequential::params`].
    pub fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Wire size of the parameters in bytes (4 bytes per scalar).
    pub fn param_bytes(&self) -> u64 {
        4 * self.param_count() as u64
    }

    /// Output dims after the whole pipeline for the given input dims.
    ///
    /// # Errors
    ///
    /// Propagates shape incompatibilities.
    pub fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        let mut dims = input_dims.to_vec();
        for layer in &self.layers {
            dims = layer.output_shape(&dims)?;
        }
        Ok(dims)
    }

    /// Per-sample FLOPs summed over all layers for the given input dims.
    ///
    /// # Errors
    ///
    /// Propagates shape incompatibilities.
    pub fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops> {
        let mut dims = input_dims.to_vec();
        let mut total = LayerFlops::zero();
        for layer in &self.layers {
            total = total + layer.flops(&dims)?;
            dims = layer.output_shape(&dims)?;
        }
        Ok(total)
    }

    /// Splits the network at `cut`: the first `cut` layers become the first
    /// returned network, the rest the second. Parameters move, caches drop.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidCut`] when `cut > depth`.
    pub fn split_at(self, cut: usize) -> Result<(Sequential, Sequential)> {
        if cut > self.layers.len() {
            return Err(NnError::InvalidCut {
                cut,
                depth: self.layers.len(),
            });
        }
        let mut layers = self.layers;
        let tail = layers.split_off(cut);
        Ok((
            Sequential {
                layers,
                mode: self.mode,
            },
            Sequential {
                layers: tail,
                mode: self.mode,
            },
        ))
    }

    /// Concatenates two halves back into one network (inverse of
    /// [`Sequential::split_at`]).
    pub fn join(front: Sequential, back: Sequential) -> Sequential {
        let mut layers = front.layers;
        layers.extend(back.layers);
        Sequential {
            layers,
            mode: front.mode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn small_net() -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(3, 5, 1));
        net.push(Relu::new());
        net.push(Dense::new(5, 2, 2));
        net
    }

    #[test]
    fn forward_backward_shapes() {
        let mut net = small_net();
        let x = Tensor::from_fn(&[4, 3], |i| (i as f32) * 0.1);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        let gx = net.backward(&Tensor::ones(&[4, 2])).unwrap();
        assert_eq!(gx.dims(), &[4, 3]);
    }

    #[test]
    fn split_then_join_preserves_function() {
        let mut whole = small_net();
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.2 - 0.3);
        let y_whole = whole.forward(&x).unwrap();

        let (mut client, mut server) = small_net().split_at(2).unwrap();
        assert_eq!(client.depth(), 2);
        assert_eq!(server.depth(), 1);
        let smashed = client.forward(&x).unwrap();
        let y_split = server.forward(&smashed).unwrap();
        assert!(y_split.approx_eq(&y_whole, 1e-6));

        let mut rejoined = Sequential::join(client, server);
        assert_eq!(rejoined.depth(), 3);
        assert!(rejoined.forward(&x).unwrap().approx_eq(&y_whole, 1e-6));
    }

    #[test]
    fn split_rejects_out_of_range() {
        assert!(matches!(
            small_net().split_at(4),
            Err(NnError::InvalidCut { cut: 4, depth: 3 })
        ));
        // Degenerate cuts at 0 and depth are allowed.
        assert!(small_net().split_at(0).is_ok());
        assert!(small_net().split_at(3).is_ok());
    }

    #[test]
    fn param_count_and_bytes() {
        let net = small_net();
        let expect = (3 * 5 + 5) + (5 * 2 + 2);
        assert_eq!(net.param_count(), expect);
        assert_eq!(net.param_bytes(), 4 * expect as u64);
    }

    #[test]
    fn output_shape_and_flops_propagate() {
        let net = small_net();
        assert_eq!(net.output_shape(&[7, 3]).unwrap(), vec![7, 2]);
        let f = net.flops(&[1, 3]).unwrap();
        assert!(f.forward > 0 && f.backward > f.forward);
        assert!(net.output_shape(&[7, 9]).is_err());
    }

    #[test]
    fn gradient_flow_through_whole_net_matches_fd() {
        let mut net = small_net();
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.3 - 0.5);
        net.forward(&x).unwrap();
        let gx = net.backward(&Tensor::ones(&[2, 2])).unwrap();
        let eps = 1e-2f32;
        for flat in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut net2 = net.clone();
            net2.set_mode(Mode::Eval);
            let fp = net2.forward(&xp).unwrap().sum();
            let fm = net2.forward(&xm).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[flat]).abs() < 2e-2,
                "fd {fd} vs analytic {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn clone_shares_nothing() {
        let mut a = small_net();
        let b = a.clone();
        // Mutating a's parameters must not affect b.
        a.params_mut()[0].value_mut().fill(0.0);
        assert_ne!(a.params()[0].value().data(), b.params()[0].value().data());
    }

    #[test]
    fn debug_lists_layer_names() {
        let net = small_net();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("dense(3→5)"));
        assert!(dbg.contains("relu"));
    }
}
