use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use crate::{NnError, Result, Sequential};
use gsfl_tensor::rng::SeedDerive;

/// Named cut points of the [`DeepThin`] network, exposing the cut-layer
/// selection axis the paper lists as future work (§IV).
///
/// The value of each variant is where the client/server boundary falls;
/// deeper cuts put more computation on the client but shrink the smashed
/// data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutPoint {
    /// After the first convolution + ReLU (client does one conv).
    AfterConv1,
    /// After the first pooling stage — the paper-style shallow client cut
    /// (default).
    AfterPool1,
    /// After the second convolution + ReLU.
    AfterConv2,
    /// After the second pooling stage.
    AfterPool2,
    /// After the first dense layer + ReLU (client holds almost everything).
    AfterFc1,
}

impl CutPoint {
    /// The layer index in the [`DeepThin`] sequential pipeline.
    pub fn layer_index(&self) -> usize {
        match self {
            CutPoint::AfterConv1 => 2,
            CutPoint::AfterPool1 => 3,
            CutPoint::AfterConv2 => 5,
            CutPoint::AfterPool2 => 7,
            CutPoint::AfterFc1 => 9,
        }
    }

    /// All cut points in depth order, for ablation sweeps.
    pub fn all() -> [CutPoint; 5] {
        [
            CutPoint::AfterConv1,
            CutPoint::AfterPool1,
            CutPoint::AfterConv2,
            CutPoint::AfterPool2,
            CutPoint::AfterFc1,
        ]
    }

    /// Short name used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            CutPoint::AfterConv1 => "conv1",
            CutPoint::AfterPool1 => "pool1",
            CutPoint::AfterConv2 => "conv2",
            CutPoint::AfterPool2 => "pool2",
            CutPoint::AfterFc1 => "fc1",
        }
    }
}

impl std::fmt::Display for CutPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builder for the DeepThin-style lightweight traffic-sign CNN.
///
/// The architecture follows the paper's reference \[4\] in spirit — a small
/// two-stage Conv/ReLU/Pool trunk and a two-layer dense head, sized for
/// CPU-only training:
///
/// ```text
/// conv(3→c1, 3×3, same) → relu → maxpool(2)
/// conv(c1→c2, 3×3, same) → relu → maxpool(2)
/// flatten → dense(c2·(s/4)² → fc) → relu → dense(fc → classes)
/// ```
///
/// # Example
///
/// ```
/// use gsfl_nn::model::{CutPoint, DeepThin};
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let net = DeepThin::builder(32, 43).seed(7).build()?;
/// assert_eq!(net.output_shape(&[1, 3, 32, 32])?, vec![1, 43]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DeepThin {
    image_size: usize,
    classes: usize,
    conv1_channels: usize,
    conv2_channels: usize,
    fc_width: usize,
    seed: u64,
}

impl DeepThin {
    /// Starts a builder for `image_size`×`image_size` RGB inputs and
    /// `classes` output classes, with GTSRB-appropriate default widths.
    pub fn builder(image_size: usize, classes: usize) -> Self {
        DeepThin {
            image_size,
            classes,
            conv1_channels: 16,
            conv2_channels: 32,
            fc_width: 128,
            seed: 0,
        }
    }

    /// Sets the first conv stage width.
    pub fn conv1_channels(mut self, c: usize) -> Self {
        self.conv1_channels = c;
        self
    }

    /// Sets the second conv stage width.
    pub fn conv2_channels(mut self, c: usize) -> Self {
        self.conv2_channels = c;
        self
    }

    /// Sets the dense hidden width.
    pub fn fc_width(mut self, w: usize) -> Self {
        self.fc_width = w;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the sequential network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] when `image_size` is not divisible by 4
    /// (two pooling stages) or any width is zero.
    pub fn build(&self) -> Result<Sequential> {
        if !self.image_size.is_multiple_of(4) || self.image_size == 0 {
            return Err(NnError::Config(format!(
                "image_size must be a positive multiple of 4, got {}",
                self.image_size
            )));
        }
        if self.classes == 0
            || self.conv1_channels == 0
            || self.conv2_channels == 0
            || self.fc_width == 0
        {
            return Err(NnError::Config("all widths must be ≥ 1".into()));
        }
        let seeds = SeedDerive::new(self.seed).child("deepthin");
        let spatial = self.image_size / 4;
        let mut net = Sequential::new();
        net.push(Conv2d::new(
            3,
            self.conv1_channels,
            3,
            1,
            1,
            seeds.index(0).seed(),
        ));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Conv2d::new(
            self.conv1_channels,
            self.conv2_channels,
            3,
            1,
            1,
            seeds.index(1).seed(),
        ));
        net.push(Relu::new());
        net.push(MaxPool2d::new(2, 2));
        net.push(Flatten::new());
        net.push(Dense::new(
            self.conv2_channels * spatial * spatial,
            self.fc_width,
            seeds.index(2).seed(),
        ));
        net.push(Relu::new());
        net.push(Dense::new(
            self.fc_width,
            self.classes,
            seeds.index(3).seed(),
        ));
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_tensor::Tensor;

    #[test]
    fn builds_and_runs_forward() {
        let mut net = DeepThin::builder(16, 10).seed(1).build().unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn depth_matches_cut_points() {
        let net = DeepThin::builder(32, 43).build().unwrap();
        assert_eq!(net.depth(), 10);
        for cp in CutPoint::all() {
            assert!(cp.layer_index() < net.depth());
            assert!(cp.layer_index() > 0);
        }
    }

    #[test]
    fn cut_points_are_strictly_increasing() {
        let idx: Vec<usize> = CutPoint::all().iter().map(|c| c.layer_index()).collect();
        for pair in idx.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn deeper_cuts_shrink_smashed_data() {
        // For a 32×32 input the activation sizes shrink monotonically at
        // pool boundaries; check pool1 vs pool2 vs fc1.
        let net = DeepThin::builder(32, 43).build().unwrap();
        let dims_at = |cut: CutPoint| -> usize {
            let (client, _) = net.clone().split_at(cut.layer_index()).unwrap();
            client
                .output_shape(&[1, 3, 32, 32])
                .unwrap()
                .iter()
                .product()
        };
        let pool1 = dims_at(CutPoint::AfterPool1);
        let pool2 = dims_at(CutPoint::AfterPool2);
        let fc1 = dims_at(CutPoint::AfterFc1);
        assert!(pool1 > pool2, "{pool1} vs {pool2}");
        assert!(pool2 > fc1, "{pool2} vs {fc1}");
    }

    #[test]
    fn rejects_bad_config() {
        assert!(DeepThin::builder(30, 43).build().is_err());
        assert!(DeepThin::builder(32, 0).build().is_err());
        assert!(DeepThin::builder(32, 10).fc_width(0).build().is_err());
    }

    #[test]
    fn same_seed_same_weights() {
        let a = DeepThin::builder(16, 5).seed(3).build().unwrap();
        let b = DeepThin::builder(16, 5).seed(3).build().unwrap();
        let c = DeepThin::builder(16, 5).seed(4).build().unwrap();
        use crate::params::ParamVec;
        assert_eq!(ParamVec::from_network(&a), ParamVec::from_network(&b));
        assert_ne!(ParamVec::from_network(&a), ParamVec::from_network(&c));
    }
}
