//! Model zoo: the lightweight traffic-sign CNN and an MLP for fast tests.

mod deepthin;
mod mlp;

pub use deepthin::{CutPoint, DeepThin};
pub use mlp::Mlp;
