use crate::layers::{Dense, Relu};
use crate::Sequential;
use gsfl_tensor::rng::SeedDerive;

/// A plain multi-layer perceptron — the fast model for unit and
/// integration tests, and for flat-feature workloads.
///
/// # Example
///
/// ```
/// use gsfl_nn::model::Mlp;
///
/// let net = Mlp::new(8, &[16, 16], 4, 0).into_sequential();
/// assert_eq!(net.depth(), 5); // dense+relu, dense+relu, dense
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    net: Sequential,
}

impl Mlp {
    /// Builds an MLP `input → hidden… → classes` with ReLU between layers.
    pub fn new(input: usize, hidden: &[usize], classes: usize, seed: u64) -> Self {
        let seeds = SeedDerive::new(seed).child("mlp");
        let mut net = Sequential::new();
        let mut prev = input;
        for (i, &h) in hidden.iter().enumerate() {
            net.push(Dense::new(prev, h, seeds.index(i as u64).seed()));
            net.push(Relu::new());
            prev = h;
        }
        net.push(Dense::new(
            prev,
            classes,
            seeds.index(hidden.len() as u64).seed(),
        ));
        Mlp { net }
    }

    /// Unwraps into the underlying [`Sequential`].
    pub fn into_sequential(self) -> Sequential {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsfl_tensor::Tensor;

    #[test]
    fn no_hidden_layers_is_logistic_regression() {
        let mut net = Mlp::new(4, &[], 3, 0).into_sequential();
        assert_eq!(net.depth(), 1);
        let y = net.forward(&Tensor::zeros(&[2, 4])).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn hidden_layers_alternate_dense_relu() {
        let net = Mlp::new(4, &[8, 6], 2, 0).into_sequential();
        let names = net.layer_names();
        assert_eq!(
            names,
            vec!["dense(4→8)", "relu", "dense(8→6)", "relu", "dense(6→2)"]
        );
    }

    #[test]
    fn deterministic_init() {
        use crate::params::ParamVec;
        let a = Mlp::new(4, &[8], 2, 7).into_sequential();
        let b = Mlp::new(4, &[8], 2, 7).into_sequential();
        assert_eq!(ParamVec::from_network(&a), ParamVec::from_network(&b));
    }
}
