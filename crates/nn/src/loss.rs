//! Loss functions with analytic gradients.
//!
//! The softmax cross-entropy hot path is *fused*: one pass computes the
//! stabilized exponentials directly into the gradient buffer (no
//! intermediate softmax tensor) and a SIMD-dispatched pass scales them
//! into the gradient. The fused form stores the same `exp(v − max)`
//! values the unfused form recomputed, reduces the denominator in the
//! same ascending order, and scales with the same `(e / denom) · 1/n`
//! expression — so it is bit-identical to the historical two-pass
//! kernel on every SIMD tier.

use crate::{NnError, Result};
use gsfl_tensor::simd::{self, Isa};
use gsfl_tensor::{Dispatch, Tensor};

/// Output of a loss computation: the scalar loss and the gradient with
/// respect to the logits, ready to feed into `Sequential::backward`.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `d loss / d logits`, shape `[batch, classes]`.
    pub grad_logits: Tensor,
}

/// Softmax cross-entropy over integer class labels.
///
/// Numerically stabilized by subtracting each row's max before
/// exponentiation. The gradient is the classic `(softmax − one_hot) / n`.
///
/// # Example
///
/// ```
/// use gsfl_nn::loss::SoftmaxCrossEntropy;
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 2.0], &[2, 2])?;
/// let out = SoftmaxCrossEntropy::new().compute(&logits, &[0, 1])?;
/// assert!(out.loss < 0.2); // confident and correct
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy {
    _priv: (),
}

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy { _priv: () }
    }

    /// Computes mean cross-entropy and its logits gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelMismatch`] / [`NnError::LabelOutOfRange`] on
    /// malformed labels, or a shape error for non-2-D logits.
    pub fn compute(&self, logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        let d = gsfl_tensor::dispatch();
        if d == Dispatch::Reference {
            return self.compute_unfused(logits, labels);
        }
        self.compute_with_isa(d.isa(), logits, labels)
    }

    /// Fused forward/backward pinned to an explicit ISA tier (benchmark
    /// and equivalence-test hook). Bit-identical to
    /// [`Self::compute_unfused`] on every tier.
    #[doc(hidden)]
    pub fn compute_with_isa(
        &self,
        isa: Isa,
        logits: &Tensor,
        labels: &[usize],
    ) -> Result<LossOutput> {
        let (n, c) = logits.shape().as_matrix().map_err(NnError::from)?;
        if labels.len() != n {
            return Err(NnError::LabelMismatch {
                logits_rows: n,
                labels: labels.len(),
            });
        }
        if n == 0 {
            return Err(NnError::Config("empty batch".into()));
        }
        let mut grad = vec![0.0f32; n * c];
        let mut total_loss = 0.0f32;
        let inv_n = 1.0 / n as f32;
        for (r, &label) in labels.iter().enumerate() {
            if label >= c {
                return Err(NnError::LabelOutOfRange { label, classes: c });
            }
            let row = &logits.data()[r * c..(r + 1) * c];
            let max = simd::reduce_max(isa, row, f32::NEG_INFINITY);
            // One pass: store each stabilized exponential straight into
            // the gradient row while summing the denominator in the
            // same ascending order as the unfused kernel.
            let grow = &mut grad[r * c..(r + 1) * c];
            let mut denom = 0.0f32;
            for (g, &v) in grow.iter_mut().zip(row) {
                let e = (v - max).exp();
                *g = e;
                denom += e;
            }
            // loss_r = −log softmax[label]
            total_loss += -(row[label] - max - denom.ln());
            // grow[j] = (e / denom) · 1/n — the exact expression the
            // unfused kernel evaluates per element.
            simd::div_then_mul(isa, grow, denom, inv_n);
            grow[label] -= inv_n;
        }
        Ok(LossOutput {
            loss: total_loss * inv_n,
            grad_logits: Tensor::from_vec(grad, &[n, c])?,
        })
    }

    /// The historical two-pass kernel (recompute the exponentials for
    /// the gradient), preserved as the reference tier and benchmark
    /// baseline.
    #[doc(hidden)]
    pub fn compute_unfused(&self, logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        let (n, c) = logits.shape().as_matrix().map_err(NnError::from)?;
        if labels.len() != n {
            return Err(NnError::LabelMismatch {
                logits_rows: n,
                labels: labels.len(),
            });
        }
        if n == 0 {
            return Err(NnError::Config("empty batch".into()));
        }
        let mut grad = vec![0.0f32; n * c];
        let mut total_loss = 0.0f32;
        let inv_n = 1.0 / n as f32;
        for (r, &label) in labels.iter().enumerate() {
            if label >= c {
                return Err(NnError::LabelOutOfRange { label, classes: c });
            }
            let row = &logits.data()[r * c..(r + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for &v in row {
                denom += (v - max).exp();
            }
            let log_denom = denom.ln();
            // loss_r = −log softmax[label]
            total_loss += -(row[label] - max - log_denom);
            let grow = &mut grad[r * c..(r + 1) * c];
            for (j, &v) in row.iter().enumerate() {
                let softmax = (v - max).exp() / denom;
                grow[j] = softmax * inv_n;
            }
            grow[label] -= inv_n;
        }
        Ok(LossOutput {
            loss: total_loss * inv_n,
            grad_logits: Tensor::from_vec(grad, &[n, c])?,
        })
    }

    /// Softmax probabilities (inference helper).
    ///
    /// # Errors
    ///
    /// Returns a shape error for non-2-D logits.
    pub fn probabilities(&self, logits: &Tensor) -> Result<Tensor> {
        let (n, c) = logits.shape().as_matrix().map_err(NnError::from)?;
        let mut out = vec![0.0f32; n * c];
        for r in 0..n {
            let row = &logits.data()[r * c..(r + 1) * c];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for &v in row {
                denom += (v - max).exp();
            }
            for (j, &v) in row.iter().enumerate() {
                out[r * c + j] = (v - max).exp() / denom;
            }
        }
        Ok(Tensor::from_vec(out, &[n, c])?)
    }
}

/// Mean squared error against a target tensor of the same shape.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanSquaredError {
    _priv: (),
}

impl MeanSquaredError {
    /// Creates the loss.
    pub fn new() -> Self {
        MeanSquaredError { _priv: () }
    }

    /// Computes `mean((pred − target)²)` and its gradient
    /// `2(pred − target)/numel`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `pred` and `target` disagree.
    pub fn compute(&self, pred: &Tensor, target: &Tensor) -> Result<LossOutput> {
        let diff = pred.sub(target)?;
        let n = diff.numel().max(1) as f32;
        let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
        Ok(LossOutput {
            loss,
            grad_logits: diff.scale(2.0 / n),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[4, 10]);
        let out = SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 1, 2, 3])
            .unwrap();
        assert!((out.loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_fn(&[3, 5], |i| (i as f32).sin());
        let out = SoftmaxCrossEntropy::new()
            .compute(&logits, &[4, 0, 2])
            .unwrap();
        for r in 0..3 {
            let row_sum: f32 = out.grad_logits.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.4 - 0.5);
        let labels = [2usize, 0];
        let loss_fn = SoftmaxCrossEntropy::new();
        let out = loss_fn.compute(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for flat in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[flat] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[flat] -= eps;
            let fp = loss_fn.compute(&lp, &labels).unwrap().loss;
            let fm = loss_fn.compute(&lm, &labels).unwrap().loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - out.grad_logits.data()[flat]).abs() < 1e-3,
                "fd {fd} vs analytic {}",
                out.grad_logits.data()[flat]
            );
        }
    }

    #[test]
    fn handles_extreme_logits_without_nan() {
        let logits = Tensor::from_vec(vec![1000.0, -1000.0], &[1, 2]).unwrap();
        let out = SoftmaxCrossEntropy::new().compute(&logits, &[0]).unwrap();
        assert!(out.loss.is_finite());
        assert!(out.grad_logits.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            SoftmaxCrossEntropy::new().compute(&logits, &[0]),
            Err(NnError::LabelMismatch { .. })
        ));
        assert!(matches!(
            SoftmaxCrossEntropy::new().compute(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn probabilities_are_normalized() {
        let logits = Tensor::from_fn(&[2, 4], |i| i as f32);
        let p = SoftmaxCrossEntropy::new().probabilities(&logits).unwrap();
        for r in 0..2 {
            let s: f32 = p.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn mse_on_equal_tensors_is_zero() {
        let a = Tensor::from_fn(&[2, 2], |i| i as f32);
        let out = MeanSquaredError::new().compute(&a, &a).unwrap();
        assert_eq!(out.loss, 0.0);
        assert!(out.grad_logits.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Tensor::from_vec(vec![1.0], &[1, 1]).unwrap();
        let target = Tensor::from_vec(vec![0.0], &[1, 1]).unwrap();
        let out = MeanSquaredError::new().compute(&pred, &target).unwrap();
        assert!(out.grad_logits.data()[0] > 0.0); // move pred down
        assert_eq!(out.loss, 1.0);
    }
}
