use gsfl_tensor::TensorError;
use std::fmt;

/// Error type for the neural-network stack.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward {
        /// Layer that was misused.
        layer: String,
    },
    /// A network or layer was configured inconsistently.
    Config(String),
    /// A cut index was out of range for the network depth.
    InvalidCut {
        /// Requested cut index.
        cut: usize,
        /// Number of layers in the network.
        depth: usize,
    },
    /// Labels passed to a loss were inconsistent with the logits.
    LabelMismatch {
        /// Number of logit rows.
        logits_rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label value exceeded the class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// Parameter vector length mismatch during load/aggregate.
    ParamLenMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on layer {layer}")
            }
            NnError::Config(msg) => write!(f, "configuration error: {msg}"),
            NnError::InvalidCut { cut, depth } => {
                write!(f, "cut index {cut} invalid for network of depth {depth}")
            }
            NnError::LabelMismatch {
                logits_rows,
                labels,
            } => write!(
                f,
                "label count {labels} does not match logit rows {logits_rows}"
            ),
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::ParamLenMismatch { expected, actual } => {
                write!(f, "parameter vector length {actual}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error;
        let err = NnError::from(TensorError::InvalidArgument("x".into()));
        assert!(err.source().is_some());
        assert!(err.to_string().contains("tensor error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
