//! Evaluation metrics.

use crate::layer::Mode;
use crate::loss::SoftmaxCrossEntropy;
use crate::{NnError, Result, Sequential};
use gsfl_tensor::Tensor;

/// Result of evaluating a classifier on a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Fraction of correct top-1 predictions in `[0, 1]`.
    pub accuracy: f64,
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Number of samples evaluated.
    pub samples: usize,
}

impl EvalResult {
    /// Accuracy as a percentage in `[0, 100]`.
    pub fn accuracy_pct(&self) -> f64 {
        self.accuracy * 100.0
    }
}

/// Evaluates `net` on `(images, labels)` in mini-batches, in eval mode.
/// The network's previous mode is restored afterwards.
///
/// # Errors
///
/// Returns [`NnError::LabelMismatch`] when `labels.len()` differs from the
/// leading dimension of `images`, or propagates shape errors.
pub fn evaluate(
    net: &mut Sequential,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<EvalResult> {
    let n = images.dims().first().copied().unwrap_or(0);
    if n != labels.len() {
        return Err(NnError::LabelMismatch {
            logits_rows: n,
            labels: labels.len(),
        });
    }
    if batch_size == 0 {
        return Err(NnError::Config("batch_size must be ≥ 1".into()));
    }
    let prev_mode = net.mode();
    net.set_mode(Mode::Eval);
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut correct = 0usize;
    let mut loss_sum = 0.0f64;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let xb = images.slice_axis0(start..end)?;
        let yb = &labels[start..end];
        let logits = net.forward(&xb)?;
        let out = loss_fn.compute(&logits, yb)?;
        loss_sum += out.loss as f64 * (end - start) as f64;
        let preds = logits.argmax_rows()?;
        correct += preds.iter().zip(yb).filter(|(p, y)| p == y).count();
        start = end;
    }
    net.set_mode(prev_mode);
    Ok(EvalResult {
        accuracy: if n == 0 {
            0.0
        } else {
            correct as f64 / n as f64
        },
        loss: if n == 0 { 0.0 } else { loss_sum / n as f64 },
        samples: n,
    })
}

/// A square confusion matrix: `m[true][pred]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Records one `(true, predicted)` observation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelOutOfRange`] for labels ≥ `classes`.
    pub fn record(&mut self, truth: usize, pred: usize) -> Result<()> {
        if truth >= self.classes {
            return Err(NnError::LabelOutOfRange {
                label: truth,
                classes: self.classes,
            });
        }
        if pred >= self.classes {
            return Err(NnError::LabelOutOfRange {
                label: pred,
                classes: self.classes,
            });
        }
        self.counts[truth * self.classes + pred] += 1;
        Ok(())
    }

    /// Count for a `(true, predicted)` cell.
    pub fn count(&self, truth: usize, pred: usize) -> u64 {
        self.counts[truth * self.classes + pred]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass over total).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Per-class recall (diagonal over row sum), `None` for unseen classes.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;

    #[test]
    fn evaluate_random_net_on_trivial_task() {
        // A zero-weight net predicts class 0 for everything (ties broken
        // toward index 0), so accuracy = fraction of label-0 samples.
        let mut net = Sequential::new();
        net.push(Dense::new(2, 3, 0));
        for p in net.params_mut() {
            p.value_mut().fill(0.0);
        }
        let images = Tensor::zeros(&[4, 2]);
        let labels = [0usize, 0, 1, 2];
        let r = evaluate(&mut net, &images, &labels, 2).unwrap();
        assert_eq!(r.samples, 4);
        assert!((r.accuracy - 0.5).abs() < 1e-9);
        assert!((r.loss - (3.0f64.ln())).abs() < 1e-4);
    }

    #[test]
    fn evaluate_validates_inputs() {
        let mut net = Sequential::new();
        net.push(Dense::new(2, 3, 0));
        let images = Tensor::zeros(&[4, 2]);
        assert!(evaluate(&mut net, &images, &[0, 1], 2).is_err());
        assert!(evaluate(&mut net, &images, &[0, 1, 2, 0], 0).is_err());
    }

    #[test]
    fn evaluate_restores_mode() {
        let mut net = Sequential::new();
        net.push(Dense::new(2, 2, 0));
        net.set_mode(Mode::Train);
        let images = Tensor::zeros(&[2, 2]);
        evaluate(&mut net, &images, &[0, 1], 2).unwrap();
        assert_eq!(net.mode(), Mode::Train);
    }

    #[test]
    fn confusion_matrix_accuracy_and_recall() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0).unwrap();
        m.record(0, 0).unwrap();
        m.record(0, 1).unwrap();
        m.record(1, 1).unwrap();
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-9);
        assert!((m.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.recall(1).unwrap(), 1.0);
        assert!(m.record(2, 0).is_err());
        assert!(m.record(0, 5).is_err());
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        let m = ConfusionMatrix::new(3);
        assert_eq!(m.accuracy(), 0.0);
        assert!(m.recall(1).is_none());
    }
}
