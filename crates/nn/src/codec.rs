//! Payload codecs: what the wire actually carries.
//!
//! Every artifact a split-learning protocol ships across the wireless
//! link — smashed activations, cut-layer gradients, model updates — is
//! encoded into a packed [`WireBuf`] before transmission. A [`Codec`]
//! provides:
//!
//! * [`Codec::encode`] — serialize a tensor's scalars into the
//!   dtype-tagged wire container ([`gsfl_tensor::wire`]). The buffer's
//!   [`WireBuf::len`] **is** the airtime charge: measured bytes of a
//!   buffer that actually exists, never a formula.
//! * [`Codec::decode`] — reconstruct the receiver's tensor from the
//!   container, with typed field-path errors on malformed input.
//! * [`Codec::encoded_len`] — the closed-form size law, exact by
//!   construction (wire sizes are pure functions of `numel` and codec
//!   parameters, never of tensor contents). Planner hot loops use the
//!   law; the charged values are calibrated against real encodes at
//!   context build and the two are pinned equal by tests.
//!
//! Five codecs ship: [`Identity`] (headerless fp32 passthrough,
//! byte-identical to the historical accounting), [`Fp16`], stochastic
//! [`IntQ`] uniform quantization, [`TopK`] sparsification, and
//! [`Pruned`] — magnitude-structured block pruning composed with IntQ.
//! They are named in configs by the serde-loadable [`CodecSpec`].
//!
//! The cut-boundary hook is [`CutChannel`]: one per training replica,
//! holding the uplink (smashed) and downlink (gradient) codecs, a
//! recycled scratch workspace, and — when enabled — per-client EF21
//! error-feedback residuals for the gradient downlink. Model updates go
//! through [`encode_delta`], which codes the *delta* against a
//! reference both endpoints hold (the round-start global), optionally
//! carrying an EF residual across rounds: the standard trick that makes
//! sparsification converge where plain top-k diverges.

use crate::params::ParamVec;
use crate::{NnError, Result};
use gsfl_tensor::wire::{
    self, decode_f16, decode_intq, decode_pruned, decode_raw, decode_topk, encode_f16, encode_intq,
    encode_pruned, encode_raw, encode_topk, WireBuf,
};
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Block size of the [`Pruned`] codec: contiguous runs of this many
/// scalars are kept or dropped together.
pub const PRUNE_BLOCK: usize = 32;

/// A payload codec: packed-container encode/decode plus the exact size
/// law (see the module docs).
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Short name used in tables and file stems (e.g. `"intq4"`).
    fn name(&self) -> String;

    /// Exact encoded size in bytes of an artifact with `numel` scalars —
    /// equal to `encode(...).len()` by construction, value-independent.
    fn encoded_len(&self, numel: usize) -> u64;

    /// Whether this codec is the fp32 passthrough (lets hot paths skip
    /// the round trip entirely — byte-identity by construction).
    fn is_identity(&self) -> bool {
        false
    }

    /// Serializes `values` into the packed container. `stream` seeds
    /// stochastic codecs (same stream ⇒ same bytes); `ws` supplies
    /// recycled scratch. The buffer is cleared first.
    fn encode(&self, values: &[f32], stream: u64, ws: &mut Workspace, buf: &mut WireBuf);

    /// Reconstructs scalars from the container into `out`.
    ///
    /// # Errors
    ///
    /// [`NnError::Tensor`] wrapping a typed
    /// [`gsfl_tensor::TensorError::Wire`] that names the malformed
    /// container field by path.
    fn decode(&self, buf: &WireBuf, out: &mut [f32]) -> Result<()>;
}

/// The fp32 passthrough: a headerless little-endian stream, 4 bytes per
/// scalar — byte-identical to the historical accounting, which keeps
/// the golden round-record fixtures valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl Codec for Identity {
    fn name(&self) -> String {
        "identity".into()
    }

    fn encoded_len(&self, numel: usize) -> u64 {
        wire::raw_len(numel)
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn encode(&self, values: &[f32], _stream: u64, _ws: &mut Workspace, buf: &mut WireBuf) {
        encode_raw(values, buf);
    }

    fn decode(&self, buf: &WireBuf, out: &mut [f32]) -> Result<()> {
        decode_raw(buf, out)?;
        Ok(())
    }
}

/// IEEE 754 binary16: 2 bytes per scalar plus the container header,
/// round-to-nearest-even.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp16;

impl Codec for Fp16 {
    fn name(&self) -> String {
        "fp16".into()
    }

    fn encoded_len(&self, numel: usize) -> u64 {
        wire::f16_len(numel)
    }

    fn encode(&self, values: &[f32], _stream: u64, _ws: &mut Workspace, buf: &mut WireBuf) {
        encode_f16(values, buf);
    }

    fn decode(&self, buf: &WireBuf, out: &mut [f32]) -> Result<()> {
        decode_f16(buf, out)?;
        Ok(())
    }
}

/// Symmetric `bits`-bit uniform quantization with seeded stochastic
/// rounding. Wire: `bits` per scalar, bit-packed, plus a 4-byte scale
/// and the container header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntQ {
    /// Bits per scalar including the sign, in `2..=16`.
    pub bits: u32,
}

impl Codec for IntQ {
    fn name(&self) -> String {
        format!("intq{}", self.bits)
    }

    fn encoded_len(&self, numel: usize) -> u64 {
        wire::intq_len(numel, self.bits)
    }

    fn encode(&self, values: &[f32], stream: u64, _ws: &mut Workspace, buf: &mut WireBuf) {
        encode_intq(values, self.bits, stream, buf);
    }

    fn decode(&self, buf: &WireBuf, out: &mut [f32]) -> Result<()> {
        decode_intq(buf, out)?;
        Ok(())
    }
}

/// Magnitude top-k sparsification: keep a `frac` fraction of the
/// scalars (at least one), zero the rest. Wire: bit-packed survivor
/// indices (⌈log₂ numel⌉ bits each) + 4-byte survivor values. Meant for
/// model *deltas* (see [`encode_delta`]); applying it to raw
/// activations is legal but rarely useful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Fraction of scalars kept, in `(0, 1]`.
    pub frac: f64,
}

impl TopK {
    /// How many scalars survive out of `numel`.
    pub fn kept(&self, numel: usize) -> usize {
        ((numel as f64 * self.frac).ceil() as usize).clamp(1, numel.max(1))
    }
}

impl Codec for TopK {
    fn name(&self) -> String {
        format!("topk{:02}", (self.frac * 100.0).round() as u64)
    }

    fn encoded_len(&self, numel: usize) -> u64 {
        wire::topk_len(numel, self.kept(numel))
    }

    fn encode(&self, values: &[f32], _stream: u64, ws: &mut Workspace, buf: &mut WireBuf) {
        encode_topk(values, self.kept(values.len()), ws, buf);
    }

    fn decode(&self, buf: &WireBuf, out: &mut [f32]) -> Result<()> {
        decode_topk(buf, out)?;
        Ok(())
    }
}

/// Magnitude-structured pruning composed with quantization: the
/// highest-L2 blocks of [`PRUNE_BLOCK`] contiguous scalars survive
/// (a `frac` fraction of blocks, at least one) and their values are
/// IntQ-quantized to `bits` bits against one shared scale; dropped
/// blocks decode to zero. Wire: bit-packed block indices + scale +
/// bit-packed codes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pruned {
    /// Fraction of blocks kept, in `(0, 1]`.
    pub frac: f64,
    /// Bits per surviving scalar, in `2..=16`.
    pub bits: u32,
}

impl Pruned {
    /// How many blocks an artifact of `numel` scalars splits into.
    pub fn blocks(numel: usize) -> usize {
        numel.div_ceil(PRUNE_BLOCK)
    }

    /// How many blocks survive out of `numel` scalars.
    pub fn kept_blocks(&self, numel: usize) -> usize {
        let n_blocks = Self::blocks(numel);
        ((n_blocks as f64 * self.frac).ceil() as usize).clamp(1, n_blocks.max(1))
    }
}

impl Codec for Pruned {
    fn name(&self) -> String {
        format!(
            "pruned{:02}q{}",
            (self.frac * 100.0).round() as u64,
            self.bits
        )
    }

    fn encoded_len(&self, numel: usize) -> u64 {
        wire::pruned_len(numel, PRUNE_BLOCK, self.kept_blocks(numel), self.bits)
    }

    fn encode(&self, values: &[f32], stream: u64, ws: &mut Workspace, buf: &mut WireBuf) {
        encode_pruned(
            values,
            PRUNE_BLOCK,
            self.kept_blocks(values.len()),
            self.bits,
            stream,
            ws,
            buf,
        );
    }

    fn decode(&self, buf: &WireBuf, out: &mut [f32]) -> Result<()> {
        decode_pruned(buf, out)?;
        Ok(())
    }
}

/// Serde-loadable codec name + parameters; builds the matching [`Codec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CodecSpec {
    /// fp32 passthrough — the historical wire format, byte-identical.
    #[default]
    Identity,
    /// IEEE binary16.
    Fp16,
    /// `bits`-bit stochastic uniform quantization.
    IntQ {
        /// Bits per scalar including the sign, in `2..=16`.
        bits: u32,
    },
    /// Magnitude top-k sparsification keeping a `frac` fraction.
    TopK {
        /// Fraction of scalars kept, in `(0, 1]`.
        frac: f64,
    },
    /// Magnitude-structured block pruning (a `frac` fraction of
    /// [`PRUNE_BLOCK`]-scalar blocks survive) composed with `bits`-bit
    /// quantization of the survivors.
    Pruned {
        /// Fraction of blocks kept, in `(0, 1]`.
        frac: f64,
        /// Bits per surviving scalar, in `2..=16`.
        bits: u32,
    },
}

impl CodecSpec {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] for out-of-range bits or fractions.
    pub fn validate(&self) -> Result<()> {
        match *self {
            CodecSpec::Identity | CodecSpec::Fp16 => Ok(()),
            CodecSpec::IntQ { bits } => {
                if !(2..=16).contains(&bits) {
                    return Err(NnError::Config(format!(
                        "intq bits must be in 2..=16, got {bits}"
                    )));
                }
                Ok(())
            }
            CodecSpec::TopK { frac } => {
                if !(frac > 0.0 && frac <= 1.0) || frac.is_nan() {
                    return Err(NnError::Config(format!(
                        "topk frac must be in (0,1], got {frac}"
                    )));
                }
                Ok(())
            }
            CodecSpec::Pruned { frac, bits } => {
                if !(frac > 0.0 && frac <= 1.0) || frac.is_nan() {
                    return Err(NnError::Config(format!(
                        "pruned frac must be in (0,1], got {frac}"
                    )));
                }
                if !(2..=16).contains(&bits) {
                    return Err(NnError::Config(format!(
                        "pruned bits must be in 2..=16, got {bits}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Builds the codec object.
    pub fn build(&self) -> Box<dyn Codec> {
        match *self {
            CodecSpec::Identity => Box::new(Identity),
            CodecSpec::Fp16 => Box::new(Fp16),
            CodecSpec::IntQ { bits } => Box::new(IntQ { bits }),
            CodecSpec::TopK { frac } => Box::new(TopK { frac }),
            CodecSpec::Pruned { frac, bits } => Box::new(Pruned { frac, bits }),
        }
    }

    /// The codec's short name without boxing.
    pub fn name(&self) -> String {
        match *self {
            CodecSpec::Identity => Identity.name(),
            CodecSpec::Fp16 => Fp16.name(),
            CodecSpec::IntQ { bits } => IntQ { bits }.name(),
            CodecSpec::TopK { frac } => TopK { frac }.name(),
            CodecSpec::Pruned { frac, bits } => Pruned { frac, bits }.name(),
        }
    }

    /// The exact encoded size law without boxing — equal to the
    /// measured `len()` of a real encode (pinned by tests), cheap
    /// enough for planner hot loops.
    pub fn encoded_len(&self, numel: usize) -> u64 {
        match *self {
            CodecSpec::Identity => Identity.encoded_len(numel),
            CodecSpec::Fp16 => Fp16.encoded_len(numel),
            CodecSpec::IntQ { bits } => IntQ { bits }.encoded_len(numel),
            CodecSpec::TopK { frac } => TopK { frac }.encoded_len(numel),
            CodecSpec::Pruned { frac, bits } => Pruned { frac, bits }.encoded_len(numel),
        }
    }

    /// The **measured** encoded size: runs a real encode of a synthetic
    /// `numel`-scalar payload through this codec and returns the
    /// resulting [`WireBuf::len`]. This is what the latency calculators
    /// are calibrated against at context build — every charged byte
    /// comes from a buffer that exists.
    pub fn measured_len(&self, numel: usize, ws: &mut Workspace) -> u64 {
        let codec = self.build();
        let mut vals = ws.take(numel);
        // A non-degenerate finite ramp; sizes are value-independent by
        // construction, so any finite payload measures the same.
        for (i, v) in vals.iter_mut().enumerate() {
            *v = ((i % 23) as f32 - 11.0) * 0.05;
        }
        let mut buf = ws.take_wire();
        codec.encode(&vals, 0, ws, &mut buf);
        let measured = buf.len() as u64;
        ws.give_wire(buf);
        ws.give(vals);
        measured
    }

    /// Whether this is the fp32 passthrough.
    pub fn is_identity(&self) -> bool {
        matches!(self, CodecSpec::Identity)
    }
}

/// Encodes `values` into a pooled [`WireBuf`], decodes back in place,
/// and returns the measured wire size — the encode→decode round trip a
/// receiver observes, with the buffer recycled through `ws`. Identity
/// skips the work (bitwise no-op by construction) and reports the raw
/// size.
///
/// # Errors
///
/// Propagates decode errors (impossible for a buffer this function just
/// encoded, short of a codec bug).
pub fn wire_roundtrip(
    codec: &dyn Codec,
    values: &mut [f32],
    stream: u64,
    ws: &mut Workspace,
) -> Result<u64> {
    if codec.is_identity() {
        return Ok(wire::raw_len(values.len()));
    }
    let mut buf = ws.take_wire();
    codec.encode(values, stream, ws, &mut buf);
    let measured = buf.len() as u64;
    debug_assert_eq!(
        measured,
        codec.encoded_len(values.len()),
        "codec {} size law drifted from its encoder",
        codec.name()
    );
    codec.decode(&buf, values)?;
    ws.give_wire(buf);
    Ok(measured)
}

/// The encode/decode hook at the cut boundary: the uplink codec applied
/// to smashed activations before they reach the server half, and the
/// downlink codec applied to cut-layer gradients before they return to
/// the client half. Owns a recycled scratch [`Workspace`] (which also
/// pools the wire buffers), so steady-state coding allocates nothing.
///
/// With error feedback enabled, each client's gradient downlink keeps
/// an EF21-style residual: the coding error of step *t* is added to the
/// gradient of step *t+1* before encoding, so a biased codec's error
/// accumulates into later transmissions instead of being lost.
/// Residuals are per-client (one channel may serve several clients,
/// e.g. the SL relay chain) and live for the channel's lifetime — one
/// round, matching the within-round locality of activations.
/// (Smashed activations get no EF: they are fresh forward outputs, not
/// an additive signal across steps.)
#[derive(Debug)]
pub struct CutChannel {
    up: Box<dyn Codec>,
    down: Box<dyn Codec>,
    ef_down: bool,
    /// Per-client gradient-downlink EF residuals.
    residuals: BTreeMap<usize, Vec<f32>>,
    ws: Workspace,
}

impl CutChannel {
    /// Builds the channel from uplink/downlink codec specs;
    /// `error_feedback` arms the gradient-downlink residuals (a no-op
    /// under an identity downlink codec).
    pub fn new(up: &CodecSpec, down: &CodecSpec, error_feedback: bool) -> Self {
        CutChannel {
            up: up.build(),
            down: down.build(),
            ef_down: error_feedback && !down.is_identity(),
            residuals: BTreeMap::new(),
            ws: Workspace::new(),
        }
    }

    /// Whether both directions are the fp32 passthrough — the hot paths
    /// skip the hook entirely then, guaranteeing byte-identity.
    pub fn is_transparent(&self) -> bool {
        self.up.is_identity() && self.down.is_identity()
    }

    /// Encodes smashed activations into the wire container and decodes
    /// them back in place (client → server). Returns the measured wire
    /// size.
    ///
    /// # Errors
    ///
    /// Propagates decode errors.
    pub fn encode_up(&mut self, smashed: &mut Tensor, stream: u64) -> Result<u64> {
        wire_roundtrip(self.up.as_ref(), smashed.data_mut(), stream, &mut self.ws)
    }

    /// Encodes a cut-layer gradient for `client` and decodes it back in
    /// place (server → client), applying this client's error-feedback
    /// residual when enabled. Returns the measured wire size.
    ///
    /// # Errors
    ///
    /// Propagates decode errors.
    pub fn encode_down(&mut self, grad: &mut Tensor, client: usize, stream: u64) -> Result<u64> {
        let data = grad.data_mut();
        if self.down.is_identity() {
            return Ok(wire::raw_len(data.len()));
        }
        if !self.ef_down {
            return wire_roundtrip(self.down.as_ref(), data, stream, &mut self.ws);
        }
        let residual = self.residuals.entry(client).or_default();
        if residual.len() != data.len() {
            // First use (or a shape change between epochs): start clean.
            residual.clear();
            residual.resize(data.len(), 0.0);
        }
        // target = gradient + carried error; remember it in the
        // residual slot, then subtract what actually got through.
        for (x, r) in data.iter_mut().zip(residual.iter_mut()) {
            *x += *r;
            *r = *x;
        }
        let mut buf = self.ws.take_wire();
        self.down.encode(data, stream, &mut self.ws, &mut buf);
        let measured = buf.len() as u64;
        self.down.decode(&buf, data)?;
        self.ws.give_wire(buf);
        for (r, x) in residual.iter_mut().zip(data.iter()) {
            *r -= *x;
        }
        Ok(measured)
    }
}

/// Applies `codec` to the **delta** of `params` against `reference`:
/// `params ← reference + decode(encode(params − reference))`. Both
/// endpoints of a model exchange hold the reference (the round-start
/// global), so delta coding is what a real system would ship — and what
/// makes [`TopK`]/[`Pruned`] sparsification meaningful, since per-round
/// deltas are near-sparse while raw weights are not.
///
/// With `residual` supplied, the EF21 error-feedback accumulator is
/// folded in: the codec encodes `delta + residual` and the residual is
/// updated to the coding error, so mass a sparse codec dropped this
/// round is retried next round instead of vanishing. Returns the
/// measured wire size of the encoded delta.
///
/// # Errors
///
/// Returns [`NnError::ParamLenMismatch`] when the vectors disagree in
/// length; propagates decode errors.
pub fn encode_delta(
    codec: &dyn Codec,
    params: &mut ParamVec,
    reference: &ParamVec,
    mut residual: Option<&mut Vec<f32>>,
    stream: u64,
    ws: &mut Workspace,
) -> Result<u64> {
    if params.len() != reference.len() {
        return Err(NnError::ParamLenMismatch {
            expected: reference.len(),
            actual: params.len(),
        });
    }
    let n = params.len();
    if codec.is_identity() {
        // Exact transmission: zero coding error, residual untouched.
        return Ok(wire::raw_len(n));
    }
    let mut delta = ws.take(n);
    for ((d, p), r) in delta
        .iter_mut()
        .zip(params.values())
        .zip(reference.values())
    {
        *d = p - r;
    }
    if let Some(res) = &mut residual {
        if res.len() != n {
            res.clear();
            res.resize(n, 0.0);
        }
        // target = delta + carried error; remember it for the error
        // update below.
        for (d, r) in delta.iter_mut().zip(res.iter_mut()) {
            *d += *r;
            *r = *d;
        }
    }
    let mut buf = ws.take_wire();
    codec.encode(&delta, stream, ws, &mut buf);
    let measured = buf.len() as u64;
    debug_assert_eq!(
        measured,
        codec.encoded_len(n),
        "codec {} size law drifted from its encoder",
        codec.name()
    );
    codec.decode(&buf, &mut delta)?;
    ws.give_wire(buf);
    if let Some(res) = &mut residual {
        // residual ← target − decoded: exactly the mass the codec lost.
        for (r, d) in res.iter_mut().zip(delta.iter()) {
            *r -= *d;
        }
    }
    for ((p, d), r) in params
        .values_mut()
        .iter_mut()
        .zip(delta.iter())
        .zip(reference.values())
    {
        *p = r + d;
    }
    ws.give(delta);
    Ok(measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.03)
            .collect()
    }

    fn roundtrip(codec: &dyn Codec, values: &mut [f32], stream: u64) -> u64 {
        let mut ws = Workspace::new();
        let mut buf = WireBuf::new();
        codec.encode(values, stream, &mut ws, &mut buf);
        let len = buf.len() as u64;
        codec.decode(&buf, values).unwrap();
        len
    }

    #[test]
    fn identity_is_a_bitwise_noop_with_the_legacy_size() {
        let orig = sample(64);
        let mut v = orig.clone();
        let len = roundtrip(&Identity, &mut v, 7);
        assert_eq!(v, orig);
        assert_eq!(len, 256, "headerless: exactly 4 bytes per scalar");
        assert_eq!(Identity.encoded_len(100), 400);
        assert!(Identity.is_identity());
    }

    #[test]
    fn measured_sizes_match_the_law_and_shrink() {
        let specs = [
            CodecSpec::Identity,
            CodecSpec::Fp16,
            CodecSpec::IntQ { bits: 8 },
            CodecSpec::IntQ { bits: 4 },
            CodecSpec::TopK { frac: 0.1 },
            CodecSpec::Pruned {
                frac: 0.25,
                bits: 4,
            },
        ];
        let mut ws = Workspace::new();
        for spec in specs {
            for n in [1usize, 100, 4096] {
                let mut v = sample(n);
                let measured = roundtrip(spec.build().as_ref(), &mut v, 3);
                assert_eq!(measured, spec.encoded_len(n), "{} n={n}", spec.name());
                assert_eq!(
                    measured,
                    spec.measured_len(n, &mut ws),
                    "{} n={n}",
                    spec.name()
                );
                if !spec.is_identity() && n >= 100 {
                    assert!(
                        measured < 4 * n as u64,
                        "{} must shrink at n={n}",
                        spec.name()
                    );
                }
            }
        }
        // Spot checks of the container laws.
        assert_eq!(Fp16.encoded_len(100), 4 + 1 + 200);
        assert_eq!(IntQ { bits: 8 }.encoded_len(100), 4 + 1 + 1 + 4 + 100);
        assert_eq!(IntQ { bits: 4 }.encoded_len(100), 4 + 1 + 1 + 4 + 50);
        // TopK always keeps at least one scalar.
        assert_eq!(TopK { frac: 0.001 }.kept(10), 1);
        assert_eq!(
            Pruned {
                frac: 0.001,
                bits: 8
            }
            .kept_blocks(64),
            1
        );
    }

    #[test]
    fn codecs_transform_like_the_in_place_kernels() {
        use gsfl_tensor::quant::{fp16_roundtrip, intq_roundtrip, topk_mask};
        let mut ws = Workspace::new();
        let orig = sample(300);

        let mut v = orig.clone();
        roundtrip(&Fp16, &mut v, 0);
        let mut k = orig.clone();
        fp16_roundtrip(&mut k);
        assert_eq!(v, k, "fp16 wire == fp16 kernel");

        let mut v = orig.clone();
        roundtrip(&IntQ { bits: 6 }, &mut v, 42);
        let mut k = orig.clone();
        intq_roundtrip(&mut k, 6, 42);
        assert_eq!(v, k, "intq wire == intq kernel, same stream");

        let mut v = orig.clone();
        roundtrip(&TopK { frac: 0.1 }, &mut v, 0);
        let mut k = orig.clone();
        topk_mask(&mut k, TopK { frac: 0.1 }.kept(300), &mut ws);
        assert_eq!(v, k, "topk wire == topk kernel");
    }

    #[test]
    fn pruned_zeroes_blocks_and_quantizes_survivors() {
        let n = 4 * PRUNE_BLOCK;
        let mut v = vec![0.01f32; n];
        for j in 0..PRUNE_BLOCK {
            v[PRUNE_BLOCK + j] = 1.0;
        }
        let codec = Pruned {
            frac: 0.25,
            bits: 8,
        };
        roundtrip(&codec, &mut v, 5);
        for j in 0..PRUNE_BLOCK {
            assert_eq!(v[j], 0.0, "dropped block");
            assert!((v[PRUNE_BLOCK + j] - 1.0).abs() < 0.01, "kept block");
            assert_eq!(v[2 * PRUNE_BLOCK + j], 0.0, "dropped block");
            assert_eq!(v[3 * PRUNE_BLOCK + j], 0.0, "dropped block");
        }
    }

    #[test]
    fn spec_builds_matching_codecs() {
        for (spec, name) in [
            (CodecSpec::Identity, "identity"),
            (CodecSpec::Fp16, "fp16"),
            (CodecSpec::IntQ { bits: 4 }, "intq4"),
            (CodecSpec::TopK { frac: 0.25 }, "topk25"),
            (
                CodecSpec::Pruned {
                    frac: 0.25,
                    bits: 4,
                },
                "pruned25q4",
            ),
        ] {
            assert_eq!(spec.name(), name);
            assert_eq!(spec.build().encoded_len(64), spec.encoded_len(64));
        }
    }

    #[test]
    fn spec_validation() {
        assert!(CodecSpec::IntQ { bits: 1 }.validate().is_err());
        assert!(CodecSpec::IntQ { bits: 17 }.validate().is_err());
        assert!(CodecSpec::IntQ { bits: 8 }.validate().is_ok());
        assert!(CodecSpec::TopK { frac: 0.0 }.validate().is_err());
        assert!(CodecSpec::TopK { frac: 1.5 }.validate().is_err());
        assert!(CodecSpec::TopK { frac: 1.0 }.validate().is_ok());
        assert!(CodecSpec::Pruned { frac: 0.0, bits: 8 }.validate().is_err());
        assert!(CodecSpec::Pruned { frac: 0.5, bits: 1 }.validate().is_err());
        assert!(CodecSpec::Pruned { frac: 0.5, bits: 8 }.validate().is_ok());
    }

    #[test]
    fn spec_serde_round_trips() {
        for spec in [
            CodecSpec::Identity,
            CodecSpec::Fp16,
            CodecSpec::IntQ { bits: 6 },
            CodecSpec::TopK { frac: 0.5 },
            CodecSpec::Pruned {
                frac: 0.25,
                bits: 8,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: CodecSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn cut_channel_transparent_fast_path() {
        let ch = CutChannel::new(&CodecSpec::Identity, &CodecSpec::Identity, false);
        assert!(ch.is_transparent());
        let ch = CutChannel::new(&CodecSpec::Fp16, &CodecSpec::Identity, false);
        assert!(!ch.is_transparent());
    }

    #[test]
    fn cut_channel_codes_both_directions_and_measures() {
        let mut ch = CutChannel::new(&CodecSpec::IntQ { bits: 4 }, &CodecSpec::Fp16, false);
        let mut up = Tensor::from_vec(sample(32), &[4, 8]).unwrap();
        let orig_up = up.clone();
        let up_len = ch.encode_up(&mut up, 3).unwrap();
        assert_ne!(up.data(), orig_up.data(), "4-bit quantization must bite");
        assert_eq!(up_len, CodecSpec::IntQ { bits: 4 }.encoded_len(32));
        let mut down = Tensor::from_vec(sample(32), &[4, 8]).unwrap();
        let orig_down = down.clone();
        let down_len = ch.encode_down(&mut down, 0, 3).unwrap();
        assert!(down.approx_eq(&orig_down, 1e-2), "fp16 error is small");
        assert_eq!(down_len, CodecSpec::Fp16.encoded_len(32));
    }

    #[test]
    fn cut_channel_error_feedback_carries_the_lost_mass() {
        // An aggressive top-k downlink drops most of the gradient. With
        // EF the dropped mass is retried on later steps: summed over
        // many steps of a *constant* gradient, the decoded total
        // approaches the true total. Without EF it never does.
        let n = 64;
        let grad: Vec<f32> = (0..n).map(|i| 0.1 + 0.001 * i as f32).collect();
        let spec = CodecSpec::TopK { frac: 0.1 };
        let steps = 50;
        let run = |ef: bool| -> f32 {
            let mut ch = CutChannel::new(&CodecSpec::Identity, &spec, ef);
            let mut sum = vec![0.0f32; n];
            for s in 0..steps {
                let mut g = Tensor::from_vec(grad.clone(), &[1, n]).unwrap();
                ch.encode_down(&mut g, 7, s as u64).unwrap();
                for (acc, x) in sum.iter_mut().zip(g.data()) {
                    *acc += x;
                }
            }
            let true_total: f32 = grad.iter().map(|x| x * steps as f32).sum();
            let got: f32 = sum.iter().sum();
            (got - true_total).abs() / true_total
        };
        let with_ef = run(true);
        let without_ef = run(false);
        assert!(
            with_ef < 0.1,
            "EF must recover most of the dropped mass, err {with_ef}"
        );
        assert!(
            without_ef > 0.5,
            "without EF most of the mass stays lost, err {without_ef}"
        );
    }

    #[test]
    fn encode_delta_codes_the_difference() {
        let mut ws = Workspace::new();
        let reference = ParamVec::from_values(vec![1.0; 16]);
        // A near-sparse delta: two large entries, the rest tiny.
        let mut values = vec![1.001f32; 16];
        values[3] = 2.0;
        values[11] = 0.0;
        let mut params = ParamVec::from_values(values);
        let codec = TopK { frac: 2.0 / 16.0 };
        let measured = encode_delta(&codec, &mut params, &reference, None, 0, &mut ws).unwrap();
        assert_eq!(measured, codec.encoded_len(16));
        // Only the two large-delta entries survive; others revert to the
        // reference.
        assert_eq!(params.values()[3], 2.0);
        assert_eq!(params.values()[11], 0.0);
        for (i, &v) in params.values().iter().enumerate() {
            if i != 3 && i != 11 {
                assert_eq!(v, 1.0, "entry {i} must fall back to the reference");
            }
        }
        // Identity is a guaranteed no-op charged at the raw size.
        let mut p2 = ParamVec::from_values(vec![0.5, 0.7]);
        let before = p2.clone();
        let id_len = encode_delta(
            &Identity,
            &mut p2,
            &ParamVec::from_values(vec![0.0, 0.0]),
            None,
            0,
            &mut ws,
        )
        .unwrap();
        assert_eq!(p2, before);
        assert_eq!(id_len, 8);
        // Length mismatch errors.
        assert!(encode_delta(
            &codec,
            &mut ParamVec::from_values(vec![1.0]),
            &reference,
            None,
            0,
            &mut ws
        )
        .is_err());
    }

    #[test]
    fn encode_delta_error_feedback_eventually_ships_every_coordinate() {
        // A client whose delta is the same every round, under a 1-of-16
        // top-k. Without EF only the largest coordinate ever ships; with
        // EF the residual grows until each coordinate takes its turn.
        let mut ws = Workspace::new();
        let reference = ParamVec::from_values(vec![0.0; 16]);
        let delta: Vec<f32> = (0..16).map(|i| 1.0 + 0.01 * i as f32).collect();
        let codec = TopK { frac: 1.0 / 16.0 };
        let mut residual = Vec::new();
        let mut shipped_total = vec![0.0f32; 16];
        for round in 0..64 {
            let mut params = ParamVec::from_values(delta.clone());
            encode_delta(
                &codec,
                &mut params,
                &reference,
                Some(&mut residual),
                round,
                &mut ws,
            )
            .unwrap();
            for (acc, v) in shipped_total.iter_mut().zip(params.values()) {
                *acc += v;
            }
        }
        assert!(
            shipped_total.iter().all(|&x| x > 0.0),
            "EF must eventually ship every coordinate: {shipped_total:?}"
        );
        // Without EF, coordinate 0 (the smallest) never ships.
        let mut never = [0.0f32; 16];
        for round in 0..64 {
            let mut params = ParamVec::from_values(delta.clone());
            encode_delta(&codec, &mut params, &reference, None, round, &mut ws).unwrap();
            for (acc, v) in never.iter_mut().zip(params.values()) {
                *acc += v;
            }
        }
        assert_eq!(never[0], 0.0, "without EF the small coordinate starves");
    }
}
