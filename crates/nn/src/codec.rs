//! Payload codecs: what the wire actually carries.
//!
//! Every artifact a split-learning protocol ships across the wireless
//! link — smashed activations, cut-layer gradients, model updates — can
//! be encoded before transmission. A [`Codec`] knows two things about an
//! artifact of `numel` scalars:
//!
//! * its **wire size** ([`Codec::wire_bytes`]) — what the latency model
//!   charges airtime for, and
//! * its **lossy round trip** ([`Codec::transcode`]) — the
//!   encode-then-decode transformation the *receiver* observes. Training
//!   proceeds on the decoded tensor, so accuracy cost and airtime saving
//!   are realized together instead of being modeled.
//!
//! Four codecs ship: [`Identity`] (fp32 passthrough, provably a no-op),
//! [`Fp16`], stochastic [`IntQ`] uniform quantization, and [`TopK`]
//! sparsification for model deltas. They are named in configs by the
//! serde-loadable [`CodecSpec`]. The cut-boundary hook is
//! [`CutChannel`]: one per training replica, holding the uplink
//! (smashed) and downlink (gradient) codecs plus a recycled scratch
//! workspace. Model updates go through [`transcode_delta`], which
//! encodes the *delta* against a reference both endpoints hold (the
//! round-start global), the standard trick that makes sparsification
//! meaningful.

use crate::params::ParamVec;
use crate::{NnError, Result};
use gsfl_tensor::quant::{fp16_roundtrip, intq_roundtrip, topk_mask};
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A payload codec: wire-size accounting plus the lossy round trip the
/// receiver observes (see the module docs).
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Short name used in tables and file stems (e.g. `"intq4"`).
    fn name(&self) -> String;

    /// Encoded wire size in bytes of an artifact with `numel` scalars.
    fn wire_bytes(&self, numel: usize) -> u64;

    /// Whether this codec is the fp32 passthrough (lets hot paths skip
    /// the transcode entirely — byte-identity by construction).
    fn is_identity(&self) -> bool {
        false
    }

    /// Applies encode-then-decode in place. `stream` seeds stochastic
    /// codecs (same stream ⇒ same result); `ws` supplies recycled
    /// scratch.
    fn transcode(&self, values: &mut [f32], stream: u64, ws: &mut Workspace);
}

/// The fp32 passthrough: 4 bytes per scalar, transcode is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl Codec for Identity {
    fn name(&self) -> String {
        "identity".into()
    }

    fn wire_bytes(&self, numel: usize) -> u64 {
        4 * numel as u64
    }

    fn is_identity(&self) -> bool {
        true
    }

    fn transcode(&self, _values: &mut [f32], _stream: u64, _ws: &mut Workspace) {}
}

/// IEEE 754 binary16: 2 bytes per scalar, round-to-nearest-even.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp16;

impl Codec for Fp16 {
    fn name(&self) -> String {
        "fp16".into()
    }

    fn wire_bytes(&self, numel: usize) -> u64 {
        2 * numel as u64
    }

    fn transcode(&self, values: &mut [f32], _stream: u64, _ws: &mut Workspace) {
        fp16_roundtrip(values);
    }
}

/// Symmetric `bits`-bit uniform quantization with seeded stochastic
/// rounding. Wire size: `bits` per scalar (packed) plus a 4-byte scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntQ {
    /// Bits per scalar including the sign, in `2..=16`.
    pub bits: u32,
}

impl Codec for IntQ {
    fn name(&self) -> String {
        format!("intq{}", self.bits)
    }

    fn wire_bytes(&self, numel: usize) -> u64 {
        (numel as u64 * u64::from(self.bits)).div_ceil(8) + 4
    }

    fn transcode(&self, values: &mut [f32], stream: u64, _ws: &mut Workspace) {
        intq_roundtrip(values, self.bits, stream);
    }
}

/// Magnitude top-k sparsification: keep a `frac` fraction of the scalars
/// (at least one), zero the rest. Wire size: 8 bytes per survivor
/// (4-byte value + 4-byte index). Meant for model *deltas* (see
/// [`transcode_delta`]); applying it to raw activations is legal but
/// rarely useful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopK {
    /// Fraction of scalars kept, in `(0, 1]`.
    pub frac: f64,
}

impl TopK {
    /// How many scalars survive out of `numel`.
    pub fn kept(&self, numel: usize) -> usize {
        ((numel as f64 * self.frac).ceil() as usize).clamp(1, numel.max(1))
    }
}

impl Codec for TopK {
    fn name(&self) -> String {
        format!("topk{:02}", (self.frac * 100.0).round() as u64)
    }

    fn wire_bytes(&self, numel: usize) -> u64 {
        8 * self.kept(numel) as u64
    }

    fn transcode(&self, values: &mut [f32], _stream: u64, ws: &mut Workspace) {
        let k = self.kept(values.len());
        topk_mask(values, k, ws);
    }
}

/// Serde-loadable codec name + parameters; builds the matching [`Codec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CodecSpec {
    /// fp32 passthrough — the historical wire format, byte-identical.
    #[default]
    Identity,
    /// IEEE binary16.
    Fp16,
    /// `bits`-bit stochastic uniform quantization.
    IntQ {
        /// Bits per scalar including the sign, in `2..=16`.
        bits: u32,
    },
    /// Magnitude top-k sparsification keeping a `frac` fraction.
    TopK {
        /// Fraction of scalars kept, in `(0, 1]`.
        frac: f64,
    },
}

impl CodecSpec {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Config`] for out-of-range bits or fractions.
    pub fn validate(&self) -> Result<()> {
        match *self {
            CodecSpec::Identity | CodecSpec::Fp16 => Ok(()),
            CodecSpec::IntQ { bits } => {
                if !(2..=16).contains(&bits) {
                    return Err(NnError::Config(format!(
                        "intq bits must be in 2..=16, got {bits}"
                    )));
                }
                Ok(())
            }
            CodecSpec::TopK { frac } => {
                if !(frac > 0.0 && frac <= 1.0) || frac.is_nan() {
                    return Err(NnError::Config(format!(
                        "topk frac must be in (0,1], got {frac}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Builds the codec object.
    pub fn build(&self) -> Box<dyn Codec> {
        match *self {
            CodecSpec::Identity => Box::new(Identity),
            CodecSpec::Fp16 => Box::new(Fp16),
            CodecSpec::IntQ { bits } => Box::new(IntQ { bits }),
            CodecSpec::TopK { frac } => Box::new(TopK { frac }),
        }
    }

    /// The codec's short name without boxing.
    pub fn name(&self) -> String {
        match *self {
            CodecSpec::Identity => Identity.name(),
            CodecSpec::Fp16 => Fp16.name(),
            CodecSpec::IntQ { bits } => IntQ { bits }.name(),
            CodecSpec::TopK { frac } => TopK { frac }.name(),
        }
    }

    /// Encoded wire size without boxing.
    pub fn wire_bytes(&self, numel: usize) -> u64 {
        match *self {
            CodecSpec::Identity => Identity.wire_bytes(numel),
            CodecSpec::Fp16 => Fp16.wire_bytes(numel),
            CodecSpec::IntQ { bits } => IntQ { bits }.wire_bytes(numel),
            CodecSpec::TopK { frac } => TopK { frac }.wire_bytes(numel),
        }
    }

    /// Whether this is the fp32 passthrough.
    pub fn is_identity(&self) -> bool {
        matches!(self, CodecSpec::Identity)
    }
}

/// The encode/decode hook at the cut boundary: the uplink codec applied
/// to smashed activations before they reach the server half, and the
/// downlink codec applied to cut-layer gradients before they return to
/// the client half. Owns a recycled scratch [`Workspace`], so
/// steady-state transcoding allocates nothing.
#[derive(Debug)]
pub struct CutChannel {
    up: Box<dyn Codec>,
    down: Box<dyn Codec>,
    ws: Workspace,
}

impl CutChannel {
    /// Builds the channel from uplink/downlink codec specs.
    pub fn new(up: &CodecSpec, down: &CodecSpec) -> Self {
        CutChannel {
            up: up.build(),
            down: down.build(),
            ws: Workspace::new(),
        }
    }

    /// Whether both directions are the fp32 passthrough — the hot paths
    /// skip the hook entirely then, guaranteeing byte-identity.
    pub fn is_transparent(&self) -> bool {
        self.up.is_identity() && self.down.is_identity()
    }

    /// Transcodes smashed activations in place (client → server).
    pub fn encode_up(&mut self, smashed: &mut Tensor, stream: u64) {
        if !self.up.is_identity() {
            self.up.transcode(smashed.data_mut(), stream, &mut self.ws);
        }
    }

    /// Transcodes a cut-layer gradient in place (server → client).
    pub fn encode_down(&mut self, grad: &mut Tensor, stream: u64) {
        if !self.down.is_identity() {
            self.down.transcode(grad.data_mut(), stream, &mut self.ws);
        }
    }
}

/// Applies `codec` to the **delta** of `params` against `reference`, in
/// place: `params ← reference + decode(encode(params − reference))`.
/// Both endpoints of a model exchange hold the reference (the
/// round-start global), so delta coding is what a real system would
/// ship — and what makes [`TopK`] sparsification meaningful, since
/// per-round deltas are near-sparse while raw weights are not.
///
/// # Errors
///
/// Returns [`NnError::ParamLenMismatch`] when the vectors disagree in
/// length.
pub fn transcode_delta(
    codec: &dyn Codec,
    params: &mut ParamVec,
    reference: &ParamVec,
    stream: u64,
    ws: &mut Workspace,
) -> Result<()> {
    if codec.is_identity() {
        return Ok(());
    }
    if params.len() != reference.len() {
        return Err(NnError::ParamLenMismatch {
            expected: reference.len(),
            actual: params.len(),
        });
    }
    let n = params.len();
    let mut delta = ws.take(n);
    for ((d, p), r) in delta
        .iter_mut()
        .zip(params.values())
        .zip(reference.values())
    {
        *d = p - r;
    }
    codec.transcode(&mut delta, stream, ws);
    for ((p, d), r) in params
        .values_mut()
        .iter_mut()
        .zip(delta.iter())
        .zip(reference.values())
    {
        *p = r + d;
    }
    ws.give(delta);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * 31 % 97) as f32 - 48.0) * 0.03)
            .collect()
    }

    #[test]
    fn identity_is_a_bitwise_noop() {
        let mut ws = Workspace::new();
        let orig = sample(64);
        let mut v = orig.clone();
        Identity.transcode(&mut v, 7, &mut ws);
        assert_eq!(v, orig);
        assert_eq!(Identity.wire_bytes(100), 400);
        assert!(Identity.is_identity());
    }

    #[test]
    fn wire_sizes_shrink() {
        assert_eq!(Fp16.wire_bytes(100), 200);
        assert_eq!(IntQ { bits: 8 }.wire_bytes(100), 104);
        assert_eq!(IntQ { bits: 4 }.wire_bytes(100), 54);
        assert_eq!(TopK { frac: 0.1 }.wire_bytes(100), 80);
        // TopK always keeps at least one scalar.
        assert_eq!(TopK { frac: 0.001 }.kept(10), 1);
    }

    #[test]
    fn spec_builds_matching_codecs() {
        for (spec, name) in [
            (CodecSpec::Identity, "identity"),
            (CodecSpec::Fp16, "fp16"),
            (CodecSpec::IntQ { bits: 4 }, "intq4"),
            (CodecSpec::TopK { frac: 0.25 }, "topk25"),
        ] {
            assert_eq!(spec.name(), name);
            assert_eq!(spec.build().wire_bytes(64), spec.wire_bytes(64));
        }
    }

    #[test]
    fn spec_validation() {
        assert!(CodecSpec::IntQ { bits: 1 }.validate().is_err());
        assert!(CodecSpec::IntQ { bits: 17 }.validate().is_err());
        assert!(CodecSpec::IntQ { bits: 8 }.validate().is_ok());
        assert!(CodecSpec::TopK { frac: 0.0 }.validate().is_err());
        assert!(CodecSpec::TopK { frac: 1.5 }.validate().is_err());
        assert!(CodecSpec::TopK { frac: 1.0 }.validate().is_ok());
    }

    #[test]
    fn spec_serde_round_trips() {
        for spec in [
            CodecSpec::Identity,
            CodecSpec::Fp16,
            CodecSpec::IntQ { bits: 6 },
            CodecSpec::TopK { frac: 0.5 },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: CodecSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn cut_channel_transparent_fast_path() {
        let ch = CutChannel::new(&CodecSpec::Identity, &CodecSpec::Identity);
        assert!(ch.is_transparent());
        let ch = CutChannel::new(&CodecSpec::Fp16, &CodecSpec::Identity);
        assert!(!ch.is_transparent());
    }

    #[test]
    fn cut_channel_transcodes_both_directions() {
        let mut ch = CutChannel::new(&CodecSpec::IntQ { bits: 4 }, &CodecSpec::Fp16);
        let mut up = Tensor::from_vec(sample(32), &[4, 8]).unwrap();
        let orig_up = up.clone();
        ch.encode_up(&mut up, 3);
        assert_ne!(up.data(), orig_up.data(), "4-bit quantization must bite");
        let mut down = Tensor::from_vec(sample(32), &[4, 8]).unwrap();
        let orig_down = down.clone();
        ch.encode_down(&mut down, 3);
        assert!(down.approx_eq(&orig_down, 1e-2), "fp16 error is small");
    }

    #[test]
    fn transcode_delta_codes_the_difference() {
        let mut ws = Workspace::new();
        let reference = ParamVec::from_values(vec![1.0; 16]);
        // A near-sparse delta: two large entries, the rest tiny.
        let mut values = vec![1.001f32; 16];
        values[3] = 2.0;
        values[11] = 0.0;
        let mut params = ParamVec::from_values(values);
        let codec = TopK { frac: 2.0 / 16.0 };
        transcode_delta(&codec, &mut params, &reference, 0, &mut ws).unwrap();
        // Only the two large-delta entries survive; others revert to the
        // reference.
        assert_eq!(params.values()[3], 2.0);
        assert_eq!(params.values()[11], 0.0);
        for (i, &v) in params.values().iter().enumerate() {
            if i != 3 && i != 11 {
                assert_eq!(v, 1.0, "entry {i} must fall back to the reference");
            }
        }
        // Identity is a guaranteed no-op.
        let mut p2 = ParamVec::from_values(vec![0.5, 0.7]);
        let before = p2.clone();
        transcode_delta(
            &Identity,
            &mut p2,
            &ParamVec::from_values(vec![0.0, 0.0]),
            0,
            &mut ws,
        )
        .unwrap();
        assert_eq!(p2, before);
        // Length mismatch errors.
        assert!(transcode_delta(
            &codec,
            &mut ParamVec::from_values(vec![1.0]),
            &reference,
            0,
            &mut ws
        )
        .is_err());
    }
}
