//! Optimizers and learning-rate schedules.

use crate::{Parameter, Result};
use gsfl_tensor::Tensor;

/// Learning-rate schedule evaluated per round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `factor` every `every` rounds.
    StepDecay {
        /// Rounds between decays.
        every: usize,
        /// Multiplicative factor per decay (e.g. 0.5).
        factor: f32,
    },
    /// Cosine annealing from the base LR to `final_fraction·base` over
    /// `total_rounds`.
    Cosine {
        /// Length of the annealing horizon.
        total_rounds: usize,
        /// LR floor as a fraction of the base LR.
        final_fraction: f32,
    },
}

impl LrSchedule {
    /// The multiplier applied to the base LR at `round` (0-based).
    pub fn multiplier(&self, round: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, factor } => match round.checked_div(every) {
                None => 1.0,
                Some(decays) => factor.powi(decays as i32),
            },
            LrSchedule::Cosine {
                total_rounds,
                final_fraction,
            } => {
                if total_rounds == 0 {
                    return 1.0;
                }
                let t = (round.min(total_rounds) as f32) / total_rounds as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                final_fraction + (1.0 - final_fraction) * cos
            }
        }
    }
}

/// Stochastic gradient descent with momentum and weight decay.
///
/// Velocity buffers are keyed by parameter position, so an optimizer
/// instance must always be stepped with the same network (this is how each
/// client/server side keeps its own momentum state in split training).
///
/// # Example
///
/// ```
/// use gsfl_nn::{optim::Sgd, Sequential, layers::Dense};
/// use gsfl_tensor::Tensor;
///
/// # fn main() -> Result<(), gsfl_nn::NnError> {
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 1, 0));
/// let mut opt = Sgd::new(0.1);
/// // ... after forward + backward ...
/// opt.step(&mut net.params_mut())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    base_lr: f32,
    momentum: f32,
    weight_decay: f32,
    schedule: LrSchedule,
    round: usize,
    velocities: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            base_lr: lr,
            momentum: 0.0,
            weight_decay: 0.0,
            schedule: LrSchedule::Constant,
            round: 0,
            velocities: Vec::new(),
        }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the LR schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The LR that will be used at the current round.
    pub fn current_lr(&self) -> f32 {
        self.base_lr * self.schedule.multiplier(self.round)
    }

    /// Advances the schedule by one round (call once per training round).
    pub fn advance_round(&mut self) {
        self.round += 1;
    }

    /// Current round counter.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Applies one update step using the accumulated gradients.
    ///
    /// The whole update runs in place over the parameter, gradient and
    /// velocity slices — no clones, no temporaries — so the momentum
    /// buffers allocated at warm-up are the only state this ever holds.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (which indicate the optimizer was
    /// stepped with a different network than it was warmed up on).
    pub fn step(&mut self, params: &mut [&mut Parameter]) -> Result<()> {
        let lr = self.current_lr();
        if self.velocities.is_empty() && self.momentum != 0.0 {
            self.velocities = params
                .iter()
                .map(|p| Tensor::zeros(p.value().dims()))
                .collect();
        }
        if gsfl_tensor::kernel_mode() == gsfl_tensor::KernelMode::Reference {
            return self.step_legacy(params, lr);
        }
        for (i, p) in params.iter_mut().enumerate() {
            let (value, grad) = p.value_and_grad_mut();
            if self.weight_decay != 0.0 {
                // grad ← grad + wd·w
                for (g, &w) in grad.data_mut().iter_mut().zip(value.data()) {
                    *g += self.weight_decay * w;
                }
            }
            if self.momentum != 0.0 {
                let v = &mut self.velocities[i];
                if !v.shape().same_dims(grad.shape()) {
                    return Err(gsfl_tensor::TensorError::ShapeMismatch {
                        left: v.dims().to_vec(),
                        right: grad.dims().to_vec(),
                        op: "add_assign",
                    }
                    .into());
                }
                // v ← μ·v + g ; w ← w − lr·v
                let momentum = self.momentum;
                for ((ve, &g), w) in v
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value.data_mut())
                {
                    *ve *= momentum;
                    *ve += g;
                    *w += -lr * *ve;
                }
            } else {
                for (w, &g) in value.data_mut().iter_mut().zip(grad.data()) {
                    *w += -lr * g;
                }
            }
        }
        Ok(())
    }

    /// The pre-optimization update, preserved verbatim (clones per step)
    /// so [`gsfl_tensor::KernelMode::Reference`] reconstructs the old
    /// engine's cost for benchmark baselines. Computes the same values
    /// as [`Sgd::step`].
    fn step_legacy(&mut self, params: &mut [&mut Parameter], lr: f32) -> Result<()> {
        for (i, p) in params.iter_mut().enumerate() {
            if self.weight_decay != 0.0 {
                let wd_term = p.value().scale(self.weight_decay);
                p.grad_mut().add_assign_t(&wd_term)?;
            }
            if self.momentum != 0.0 {
                let v = &mut self.velocities[i];
                v.scale_assign(self.momentum);
                let grad = p.grad().clone();
                v.add_assign_t(&grad)?;
                let v_snapshot = v.clone();
                p.value_mut().axpy(-lr, &v_snapshot)?;
            } else {
                let grad = p.grad().clone();
                p.value_mut().axpy(-lr, &grad)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(at: f32) -> Parameter {
        // Minimize f(w) = w² with grad 2w.
        let mut p = Parameter::new(Tensor::from_vec(vec![at], &[1]).unwrap());
        let g = p.value().scale(2.0);
        *p.grad_mut() = g;
        p
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..50 {
            let g = p.value().scale(2.0);
            *p.grad_mut() = g;
            opt.step(&mut [&mut p]).unwrap();
        }
        assert!(p.value().data()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_on_consistent_gradient() {
        // Constant gradient of 1: with momentum the effective step grows.
        let mut plain = Parameter::new(Tensor::zeros(&[1]));
        let mut mom = Parameter::new(Tensor::zeros(&[1]));
        let mut opt_plain = Sgd::new(0.1);
        let mut opt_mom = Sgd::new(0.1).with_momentum(0.9);
        for _ in 0..10 {
            plain.grad_mut().fill(1.0);
            mom.grad_mut().fill(1.0);
            opt_plain.step(&mut [&mut plain]).unwrap();
            opt_mom.step(&mut [&mut mom]).unwrap();
        }
        assert!(mom.value().data()[0] < plain.value().data()[0]);
    }

    #[test]
    fn weight_decay_shrinks_weights_with_zero_grad() {
        let mut p = Parameter::new(Tensor::from_vec(vec![1.0], &[1]).unwrap());
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        p.zero_grad();
        opt.step(&mut [&mut p]).unwrap();
        assert!((p.value().data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn step_decay_schedule() {
        let s = LrSchedule::StepDecay {
            every: 10,
            factor: 0.5,
        };
        assert_eq!(s.multiplier(0), 1.0);
        assert_eq!(s.multiplier(9), 1.0);
        assert_eq!(s.multiplier(10), 0.5);
        assert_eq!(s.multiplier(25), 0.25);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        let s = LrSchedule::Cosine {
            total_rounds: 100,
            final_fraction: 0.1,
        };
        assert!((s.multiplier(0) - 1.0).abs() < 1e-6);
        assert!((s.multiplier(100) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(1000) - 0.1).abs() < 1e-6);
        let mid = s.multiplier(50);
        assert!(mid > 0.1 && mid < 1.0);
    }

    #[test]
    fn advance_round_changes_lr() {
        let mut opt = Sgd::new(1.0).with_schedule(LrSchedule::StepDecay {
            every: 1,
            factor: 0.5,
        });
        assert_eq!(opt.current_lr(), 1.0);
        opt.advance_round();
        assert_eq!(opt.current_lr(), 0.5);
        assert_eq!(opt.round(), 1);
    }
}
