use gsfl_tensor::Tensor;

/// A trainable parameter: its value and the gradient accumulated by the
/// most recent backward pass.
///
/// # Example
///
/// ```
/// use gsfl_nn::Parameter;
/// use gsfl_tensor::Tensor;
///
/// let mut p = Parameter::new(Tensor::ones(&[2, 2]));
/// assert_eq!(p.grad().sum(), 0.0);
/// p.grad_mut().fill(1.0);
/// p.zero_grad();
/// assert_eq!(p.grad().sum(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    value: Tensor,
    grad: Tensor,
}

impl Parameter {
    /// Wraps an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims());
        Parameter { value, grad }
    }

    /// The parameter value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the parameter value (used by optimizers and
    /// aggregation).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Mutable access to the gradient (used by layer backward passes).
    pub fn grad_mut(&mut self) -> &mut Tensor {
        &mut self.grad
    }

    /// Simultaneous mutable access to value and gradient (the optimizer
    /// update reads the gradient while writing the value in one pass).
    pub fn value_and_grad_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.value, &mut self.grad)
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.zero();
    }

    /// Number of scalar elements in this parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_starts_zeroed_with_matching_shape() {
        let p = Parameter::new(Tensor::ones(&[3, 4]));
        assert_eq!(p.grad().dims(), &[3, 4]);
        assert_eq!(p.grad().sum(), 0.0);
        assert_eq!(p.numel(), 12);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Parameter::new(Tensor::ones(&[2]));
        p.grad_mut().fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad().sum(), 0.0);
    }
}
