//! The layer contract.

use crate::flops::LayerFlops;
use crate::{Parameter, Result};
use gsfl_tensor::Tensor;

/// Whether a forward pass is for training (caches activations, applies
/// dropout, uses batch statistics) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training: cache activations for backward, stochastic layers active.
    #[default]
    Train,
    /// Inference: no caching requirements, deterministic behaviour.
    Eval,
}

/// A differentiable network layer.
///
/// Layers own their parameters and the activation caches needed for the
/// backward pass; [`Layer::backward`] must be preceded by a
/// [`Layer::forward`] in [`Mode::Train`].
///
/// The trait is object-safe: networks are `Vec<Box<dyn Layer>>`, and
/// [`Layer::clone_box`] supports duplicating whole networks when a scheme
/// distributes models to clients or replicates server-side models per group.
pub trait Layer: Send {
    /// Human-readable layer name (e.g. `"conv2d(3→16,3×3)"`).
    fn name(&self) -> String;

    /// Computes the layer output, caching whatever `backward` will need
    /// when `mode` is [`Mode::Train`].
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_out` through the layer, accumulating parameter
    /// gradients and returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when no cached
    /// forward activation exists, or a shape error when `grad_out` does not
    /// match the cached output shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Immutable views of the layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Parameter>;

    /// Mutable views of the layer's parameters, in the same order as
    /// [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Parameter>;

    /// Output dims for a given input dims, without running the layer.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>>;

    /// Estimated floating-point operations per *sample* for the given input
    /// dims (used by the wireless latency model).
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops>;

    /// Clones the layer into a fresh box (parameters copied, caches
    /// dropped).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_train() {
        assert_eq!(Mode::default(), Mode::Train);
    }
}
