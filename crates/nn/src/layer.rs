//! The layer contract.

use crate::flops::LayerFlops;
use crate::{Parameter, Result};
use gsfl_tensor::workspace::Workspace;
use gsfl_tensor::Tensor;

/// Refreshes an activation cache slot from `src`, reusing the existing
/// tensor's backing buffer when the slot is already populated.
pub(crate) fn cache_tensor(slot: &mut Option<Tensor>, src: &Tensor) {
    match slot {
        Some(t) => t.assign(src),
        None => *slot = Some(src.clone()),
    }
}

/// Whether a forward pass is for training (caches activations, applies
/// dropout, uses batch statistics) or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Training: cache activations for backward, stochastic layers active.
    #[default]
    Train,
    /// Inference: no caching requirements, deterministic behaviour.
    Eval,
}

/// A differentiable network layer.
///
/// Layers own their parameters and the activation caches needed for the
/// backward pass; [`Layer::backward`] must be preceded by a
/// [`Layer::forward`] in [`Mode::Train`].
///
/// The trait is object-safe: networks are `Vec<Box<dyn Layer>>`, and
/// [`Layer::clone_box`] supports duplicating whole networks when a scheme
/// distributes models to clients or replicates server-side models per group.
/// Layers are plain owned data (`Send + Sync`), so shared network
/// templates can be cloned from any worker thread.
pub trait Layer: Send + Sync {
    /// Human-readable layer name (e.g. `"conv2d(3→16,3×3)"`).
    fn name(&self) -> String;

    /// Computes the layer output, caching whatever `backward` will need
    /// when `mode` is [`Mode::Train`].
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates `grad_out` through the layer, accumulating parameter
    /// gradients and returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] when no cached
    /// forward activation exists, or a shape error when `grad_out` does not
    /// match the cached output shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// [`Layer::forward`] drawing scratch (and, where possible, the
    /// output buffer) from a caller [`Workspace`]. Layers on the training
    /// hot path override this; the default simply ignores the workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::forward`].
    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let _ = ws;
        self.forward(input, mode)
    }

    /// [`Layer::backward`] drawing scratch from a caller [`Workspace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::backward`].
    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<Tensor> {
        let _ = ws;
        self.backward(grad_out)
    }

    /// [`Layer::backward_ws`] for a network's **first** layer, whose
    /// input gradient nothing consumes: accumulates parameter gradients
    /// but may skip computing the input gradient entirely. The default
    /// just discards it; layers whose input gradient is expensive
    /// (dense, conv) override this with a real skip.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Layer::backward`].
    fn backward_ws_last(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Result<()> {
        let g = self.backward_ws(grad_out, ws)?;
        ws.recycle(g);
        Ok(())
    }

    /// Immutable views of the layer's parameters (possibly empty).
    fn params(&self) -> Vec<&Parameter>;

    /// Mutable views of the layer's parameters, in the same order as
    /// [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Parameter>;

    /// Output dims for a given input dims, without running the layer.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn output_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>>;

    /// Estimated floating-point operations per *sample* for the given input
    /// dims (used by the wireless latency model).
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible.
    fn flops(&self, input_dims: &[usize]) -> Result<LayerFlops>;

    /// Clones the layer into a fresh box (parameters copied, caches
    /// dropped).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Total scalar parameter count.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Resets all parameter gradients to zero.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_default_is_train() {
        assert_eq!(Mode::default(), Mode::Train);
    }
}
