//! Cut-layer model splitting — the core mechanic of split learning.
//!
//! A [`SplitNetwork`] owns a client-side and a server-side
//! [`Sequential`]. In split learning the client runs
//! `client.forward(batch)` and transmits the resulting *smashed data* (the
//! activations at the cut) to the server; the server completes the forward
//! pass, computes the loss, backpropagates to the cut, and returns the
//! *smashed gradient*, which the client feeds to `client.backward`.

use crate::{NnError, Result, Sequential};
use gsfl_tensor::{io, Tensor};

/// A model split into a client half and a server half at a cut layer.
#[derive(Debug, Clone)]
pub struct SplitNetwork {
    /// Layers `0..cut`, executed on the client device.
    pub client: Sequential,
    /// Layers `cut..depth`, executed on the edge server.
    pub server: Sequential,
    cut: usize,
}

impl SplitNetwork {
    /// Splits `net` at layer index `cut` (the client keeps `cut` layers).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidCut`] when `cut` exceeds the depth, or
    /// [`NnError::Config`] for degenerate cuts that would leave either side
    /// empty — split learning requires both sides to hold at least one
    /// layer.
    pub fn split(net: Sequential, cut: usize) -> Result<Self> {
        let depth = net.depth();
        if cut == 0 || cut >= depth {
            if cut >= depth {
                return Err(NnError::InvalidCut { cut, depth });
            }
            return Err(NnError::Config(
                "cut must leave at least one layer on each side".into(),
            ));
        }
        let (client, server) = net.split_at(cut)?;
        Ok(SplitNetwork {
            client,
            server,
            cut,
        })
    }

    /// The cut index this network was split at.
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// Reassembles the full network (client layers then server layers).
    pub fn into_joined(self) -> Sequential {
        Sequential::join(self.client, self.server)
    }

    /// Shape of the smashed-data tensor for a given input batch shape.
    ///
    /// # Errors
    ///
    /// Propagates shape incompatibilities.
    pub fn smashed_shape(&self, input_dims: &[usize]) -> Result<Vec<usize>> {
        self.client.output_shape(input_dims)
    }

    /// Wire size in bytes of the smashed data for a given input batch shape
    /// (identical for the returned gradient).
    ///
    /// # Errors
    ///
    /// Propagates shape incompatibilities.
    pub fn smashed_bytes(&self, input_dims: &[usize]) -> Result<u64> {
        let dims = self.smashed_shape(input_dims)?;
        Ok(io::payload_bytes(dims.iter().product()))
    }
}

/// Smashed data in transit: the cut-layer activations plus label metadata
/// the server needs to compute the loss.
///
/// In the paper's protocol the client sends the smashed data *and* the
/// labels of the mini-batch to the AP (label sharing, as in SplitFed); the
/// server-side model computes predictions and the loss.
#[derive(Debug, Clone)]
pub struct SmashedData {
    /// Activations at the cut layer, `[batch, …]`.
    pub activations: Tensor,
    /// Mini-batch labels (class indices).
    pub labels: Vec<usize>,
}

impl SmashedData {
    /// Creates smashed data, validating that the batch sizes agree.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::LabelMismatch`] when `labels.len()` differs from
    /// the leading dimension of `activations`.
    pub fn new(activations: Tensor, labels: Vec<usize>) -> Result<Self> {
        let batch = activations.dims().first().copied().unwrap_or(0);
        if batch != labels.len() {
            return Err(NnError::LabelMismatch {
                logits_rows: batch,
                labels: labels.len(),
            });
        }
        Ok(SmashedData {
            activations,
            labels,
        })
    }

    /// Wire size in bytes: activations (4 bytes/elem) + labels (4 bytes
    /// each, as u32 class ids).
    pub fn wire_bytes(&self) -> u64 {
        io::payload_bytes(self.activations.numel()) + 4 * self.labels.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn net() -> Sequential {
        let mut n = Sequential::new();
        n.push(Dense::new(4, 6, 1));
        n.push(Relu::new());
        n.push(Dense::new(6, 3, 2));
        n
    }

    #[test]
    fn split_preserves_function() {
        let mut whole = net();
        let x = Tensor::from_fn(&[2, 4], |i| (i as f32) * 0.1);
        let y = whole.forward(&x).unwrap();
        let mut s = SplitNetwork::split(net(), 2).unwrap();
        let smashed = s.client.forward(&x).unwrap();
        let y2 = s.server.forward(&smashed).unwrap();
        assert!(y2.approx_eq(&y, 1e-6));
        assert_eq!(s.cut(), 2);
    }

    #[test]
    fn degenerate_cuts_rejected() {
        assert!(SplitNetwork::split(net(), 0).is_err());
        assert!(SplitNetwork::split(net(), 3).is_err());
        assert!(SplitNetwork::split(net(), 9).is_err());
    }

    #[test]
    fn smashed_shape_and_bytes() {
        let s = SplitNetwork::split(net(), 2).unwrap();
        assert_eq!(s.smashed_shape(&[8, 4]).unwrap(), vec![8, 6]);
        assert_eq!(s.smashed_bytes(&[8, 4]).unwrap(), 4 * 8 * 6);
    }

    #[test]
    fn into_joined_round_trips() {
        let mut whole = net();
        let x = Tensor::from_fn(&[1, 4], |i| i as f32 * 0.3);
        let y = whole.forward(&x).unwrap();
        let s = SplitNetwork::split(net(), 1).unwrap();
        let mut rejoined = s.into_joined();
        assert!(rejoined.forward(&x).unwrap().approx_eq(&y, 1e-6));
    }

    #[test]
    fn smashed_data_validates_labels() {
        let act = Tensor::zeros(&[3, 6]);
        assert!(SmashedData::new(act.clone(), vec![0, 1]).is_err());
        let ok = SmashedData::new(act, vec![0, 1, 2]).unwrap();
        assert_eq!(ok.wire_bytes(), 4 * 18 + 12);
    }
}
