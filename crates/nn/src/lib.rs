//! Neural-network stack with cut-layer model splitting.
//!
//! `gsfl-nn` implements everything the GSFL training schemes need from a
//! deep-learning framework, from scratch on top of
//! [`gsfl-tensor`](gsfl_tensor):
//!
//! * [`layer::Layer`] — the forward/backward layer contract with parameter,
//!   shape and FLOPs accounting,
//! * [`layers`] — dense, conv2d, ReLU family, pooling, flatten, dropout,
//!   batch-norm,
//! * [`Sequential`] — a layer pipeline that can be **split at any cut
//!   layer** into a client-side and a server-side network
//!   ([`split::SplitNetwork`]), the core mechanic of split learning,
//! * [`loss`] — softmax cross-entropy and MSE with analytic gradients,
//! * [`optim`] — SGD with momentum, weight decay and LR schedules,
//! * [`params::ParamVec`] — flattened parameter vectors for FedAvg
//!   aggregation and wire-size accounting,
//! * [`codec`] — payload codecs (fp16, stochastic int quantization,
//!   top-k sparsification) applied to everything that crosses the
//!   simulated wireless link,
//! * [`flops`] — per-layer forward/backward FLOPs estimates that drive the
//!   wireless latency model,
//! * [`model`] — the lightweight traffic-sign CNN (DeepThin-style) and an
//!   MLP for fast tests.
//!
//! # Example: train one step, split, and hand smashed data across
//!
//! ```
//! use gsfl_nn::{model::Mlp, split::SplitNetwork, loss::SoftmaxCrossEntropy};
//! use gsfl_tensor::Tensor;
//!
//! # fn main() -> Result<(), gsfl_nn::NnError> {
//! let net = Mlp::new(4, &[8], 3, 42).into_sequential();
//! let mut split = SplitNetwork::split(net, 2)?; // client keeps dense+relu
//! let x = Tensor::zeros(&[2, 4]);
//! let smashed = split.client.forward(&x)?;           // client-side forward
//! let logits = split.server.forward(&smashed)?;      // server-side forward
//! let loss = SoftmaxCrossEntropy::new().compute(&logits, &[0, 1])?;
//! let grad_smashed = split.server.backward(&loss.grad_logits)?; // server backward
//! let _ = split.client.backward(&grad_smashed)?;     // client backward
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod error;
mod param;
mod sequential;

pub mod codec;
pub mod flops;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod params;
pub mod split;

pub use error::NnError;
pub use param::Parameter;
pub use sequential::Sequential;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
