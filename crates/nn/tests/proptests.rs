//! Property-based tests for the neural-network stack.

use gsfl_nn::layers::{Dense, Relu};
use gsfl_nn::loss::SoftmaxCrossEntropy;
use gsfl_nn::params::{fed_avg, ParamVec};
use gsfl_nn::split::SplitNetwork;
use gsfl_nn::Sequential;
use gsfl_tensor::Tensor;
use proptest::prelude::*;

fn mlp(input: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Dense::new(input, hidden, seed));
    net.push(Relu::new());
    net.push(Dense::new(hidden, classes, seed + 1));
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn split_preserves_function_at_any_cut(
        seed in 0u64..500,
        cut in 1usize..3,
        batch in 1usize..5,
    ) {
        let mut whole = mlp(6, 8, 3, seed);
        let x = Tensor::from_fn(&[batch, 6], |i| ((i * 31 + seed as usize) % 17) as f32 * 0.1 - 0.8);
        let expect = whole.forward(&x).unwrap();
        let mut split = SplitNetwork::split(mlp(6, 8, 3, seed), cut).unwrap();
        let smashed = split.client.forward(&x).unwrap();
        let got = split.server.forward(&smashed).unwrap();
        prop_assert!(got.approx_eq(&expect, 1e-5));
    }

    #[test]
    fn fed_avg_is_convex_combination(
        a_fill in -5.0f32..5.0,
        b_fill in -5.0f32..5.0,
        w1 in 0.01f64..10.0,
        w2 in 0.01f64..10.0,
    ) {
        let a = ParamVec::from_values(vec![a_fill; 20]);
        let b = ParamVec::from_values(vec![b_fill; 20]);
        let avg = fed_avg(&[a, b], &[w1, w2]).unwrap();
        let lo = a_fill.min(b_fill) - 1e-4;
        let hi = a_fill.max(b_fill) + 1e-4;
        prop_assert!(avg.values().iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn fed_avg_idempotent_on_identical_models(seed in 0u64..500, k in 1usize..6) {
        let snap = ParamVec::from_network(&mlp(4, 6, 2, seed));
        let copies: Vec<ParamVec> = (0..k).map(|_| snap.clone()).collect();
        let weights: Vec<f64> = (1..=k).map(|w| w as f64).collect();
        let avg = fed_avg(&copies, &weights).unwrap();
        prop_assert!(avg.l2_distance(&snap).unwrap() < 1e-4);
    }

    #[test]
    fn fed_avg_permutation_invariant(sa in 0u64..100, sb in 0u64..100, sc in 0u64..100) {
        let a = ParamVec::from_network(&mlp(4, 5, 2, sa));
        let b = ParamVec::from_network(&mlp(4, 5, 2, sb + 1000));
        let c = ParamVec::from_network(&mlp(4, 5, 2, sc + 2000));
        let x = fed_avg(&[a.clone(), b.clone(), c.clone()], &[1.0, 2.0, 3.0]).unwrap();
        let y = fed_avg(&[c, a, b], &[3.0, 1.0, 2.0]).unwrap();
        prop_assert!(x.l2_distance(&y).unwrap() < 1e-4);
    }

    #[test]
    fn snapshot_load_round_trip(seed in 0u64..500) {
        let src = mlp(5, 7, 3, seed);
        let snap = ParamVec::from_network(&src);
        let mut dst = mlp(5, 7, 3, seed + 777);
        snap.load_into(&mut dst).unwrap();
        prop_assert_eq!(ParamVec::from_network(&dst), snap);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero_per_row(
        seed in 0u64..500,
        rows in 1usize..6,
        cols in 2usize..8,
    ) {
        let logits = Tensor::from_fn(&[rows, cols], |i| (((i as u64 + seed) * 2654435761 % 1000) as f32) / 100.0 - 5.0);
        let labels: Vec<usize> = (0..rows).map(|r| (r + seed as usize) % cols).collect();
        let out = SoftmaxCrossEntropy::new().compute(&logits, &labels).unwrap();
        prop_assert!(out.loss.is_finite());
        for r in 0..rows {
            let s: f32 = out.grad_logits.data()[r * cols..(r + 1) * cols].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn identity_codec_round_trip_is_bitwise_exact(seed in 0u64..300, n in 1usize..512) {
        use gsfl_nn::codec::{wire_roundtrip, Codec, Identity};
        use gsfl_tensor::Workspace;
        let mut ws = Workspace::new();
        let orig: Vec<f32> = (0..n).map(|i| ((i as u64 * 31 + seed) % 997) as f32 * 0.01 - 4.5).collect();
        let mut v = orig.clone();
        // The fast path reports the raw size without touching bytes…
        let fast = wire_roundtrip(&Identity, &mut v, seed, &mut ws).unwrap();
        prop_assert_eq!(&v, &orig, "identity must not move a bit");
        prop_assert_eq!(fast, 4 * n as u64);
        // …and the real encode produces exactly those bytes (headerless).
        let mut buf = ws.take_wire();
        Identity.encode(&v, seed, &mut ws, &mut buf);
        prop_assert_eq!(buf.len() as u64, Identity.encoded_len(n));
        prop_assert_eq!(buf.len(), 4 * n, "no container overhead on fp32");
        let mut back = vec![0.0f32; n];
        Identity.decode(&buf, &mut back).unwrap();
        prop_assert_eq!(&back, &orig);
        ws.give_wire(buf);
    }

    #[test]
    fn fp16_codec_round_trip_within_documented_epsilon(seed in 0u64..300, n in 1usize..512) {
        use gsfl_nn::codec::{wire_roundtrip, Codec, Fp16};
        use gsfl_tensor::Workspace;
        let mut ws = Workspace::new();
        // Normal-range values: relative error ≤ 2^-11 (half-precision ulp).
        let orig: Vec<f32> = (0..n).map(|i| ((i as u64 * 37 + seed) % 1999) as f32 * 0.013 - 13.0).collect();
        let mut v = orig.clone();
        let measured = wire_roundtrip(&Fp16, &mut v, seed, &mut ws).unwrap();
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() <= b.abs() / 2048.0 + 1e-24, "{} -> {}", b, a);
        }
        prop_assert_eq!(measured, Fp16.encoded_len(n));
    }

    #[test]
    fn intq_codec_round_trip_within_one_step(
        seed in 0u64..300,
        n in 1usize..512,
        bits in 2u32..=16,
    ) {
        use gsfl_nn::codec::{wire_roundtrip, Codec, IntQ};
        use gsfl_tensor::Workspace;
        let mut ws = Workspace::new();
        let orig: Vec<f32> = (0..n).map(|i| ((i as u64 * 53 + seed) % 401) as f32 * 0.02 - 4.0).collect();
        let mut v = orig.clone();
        let codec = IntQ { bits };
        let measured = wire_roundtrip(&codec, &mut v, seed, &mut ws).unwrap();
        prop_assert_eq!(measured, codec.encoded_len(n), "measured bytes obey the law");
        // Stochastic rounding never moves a value by more than one
        // quantization step: scale / (2^(bits-1) - 1).
        let scale = orig.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let step = scale / ((1u32 << (bits - 1)) - 1) as f32;
        for (a, b) in v.iter().zip(&orig) {
            prop_assert!((a - b).abs() <= step + 1e-6, "{} -> {} (step {})", b, a, step);
        }
        // Deterministic per stream.
        let mut again = orig.clone();
        wire_roundtrip(&codec, &mut again, seed, &mut ws).unwrap();
        prop_assert_eq!(v, again);
    }

    #[test]
    fn topk_codec_preserves_the_top_k_set(
        seed in 0u64..300,
        n in 2usize..256,
        frac in 0.05f64..1.0,
    ) {
        use gsfl_nn::codec::{wire_roundtrip, Codec, TopK};
        use gsfl_tensor::Workspace;
        let mut ws = Workspace::new();
        let orig: Vec<f32> = (0..n).map(|i| ((i as u64 * 71 + seed) % 509) as f32 * 0.04 - 10.0).collect();
        let codec = TopK { frac };
        let k = codec.kept(n);
        let mut v = orig.clone();
        let measured = wire_roundtrip(&codec, &mut v, seed, &mut ws).unwrap();
        prop_assert_eq!(measured, codec.encoded_len(n), "measured bytes obey the law");
        // Exactly k survivors, each bit-identical to its original.
        let survivors: Vec<usize> = v
            .iter()
            .enumerate()
            .filter(|(_, &x)| x != 0.0)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(survivors.len() <= k);
        for &i in &survivors {
            prop_assert_eq!(v[i], orig[i], "survivors keep exact values");
        }
        // No zeroed element may strictly dominate a survivor: the kth
        // magnitude is a floor under every kept value.
        let min_kept = survivors
            .iter()
            .map(|&i| orig[i].abs())
            .fold(f32::INFINITY, f32::min);
        for (i, &x) in orig.iter().enumerate() {
            if !survivors.contains(&i) {
                prop_assert!(x.abs() <= min_kept + 1e-12, "dropped {} beats kept {}", x, min_kept);
            }
        }
    }

    #[test]
    fn pruned_codec_zeroes_whole_blocks_and_obeys_the_law(
        seed in 0u64..300,
        n in 1usize..512,
        frac in 0.05f64..1.0,
        bits in 2u32..=16,
    ) {
        use gsfl_nn::codec::{wire_roundtrip, Codec, Pruned, PRUNE_BLOCK};
        use gsfl_tensor::Workspace;
        let mut ws = Workspace::new();
        let orig: Vec<f32> = (0..n).map(|i| ((i as u64 * 83 + seed) % 619) as f32 * 0.03 - 9.0).collect();
        let codec = Pruned { frac, bits };
        let mut v = orig.clone();
        let measured = wire_roundtrip(&codec, &mut v, seed, &mut ws).unwrap();
        prop_assert_eq!(measured, codec.encoded_len(n), "measured bytes obey the law");
        // Each block is either all-zero (dropped) or quantized within one
        // step of the original (kept).
        let scale = orig.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let step = scale / ((1u32 << (bits - 1)) - 1) as f32;
        let mut kept_blocks = 0usize;
        for (b, chunk) in v.chunks(PRUNE_BLOCK).enumerate() {
            let zeroed = chunk.iter().all(|&x| x == 0.0);
            let close = chunk.iter().zip(&orig[b * PRUNE_BLOCK..]).all(|(a, o)| (a - o).abs() <= step + 1e-6);
            prop_assert!(zeroed || close, "block {} is neither dropped nor quantized", b);
            if !zeroed { kept_blocks += 1; }
        }
        prop_assert!(kept_blocks <= codec.kept_blocks(n));
    }

    #[test]
    fn error_feedback_residual_equals_the_coding_error(
        seed in 0u64..200,
        n in 2usize..256,
        frac in 0.05f64..0.5,
    ) {
        use gsfl_nn::codec::{encode_delta, TopK};
        use gsfl_nn::params::ParamVec;
        use gsfl_tensor::Workspace;
        let mut ws = Workspace::new();
        let reference = ParamVec::from_values(vec![0.0f32; n]);
        let delta: Vec<f32> = (0..n).map(|i| ((i as u64 * 97 + seed) % 331) as f32 * 0.02 - 3.3).collect();
        let codec = TopK { frac };
        let mut residual = vec![0.0f32; n];
        let mut prev_residual = residual.clone();
        for round in 0..4u64 {
            let mut params = ParamVec::from_values(delta.clone());
            encode_delta(&codec, &mut params, &reference, Some(&mut residual), round, &mut ws).unwrap();
            // Invariant: residual + decoded == delta + previous residual
            // (nothing is created or destroyed by the bookkeeping).
            for i in 0..n {
                let target = delta[i] + prev_residual[i];
                let decoded = params.values()[i];
                prop_assert!(
                    (residual[i] + decoded - target).abs() <= 1e-5,
                    "round {}: residual {} + decoded {} != target {}",
                    round, residual[i], decoded, target
                );
            }
            prev_residual.copy_from_slice(&residual);
        }
    }

    #[test]
    fn one_sgd_step_on_correct_label_reduces_loss(seed in 0u64..300) {
        use gsfl_nn::optim::Sgd;
        let mut net = mlp(4, 6, 3, seed);
        let x = Tensor::from_fn(&[4, 4], |i| ((i * 13 + seed as usize) % 11) as f32 * 0.1);
        let labels = [0usize, 1, 2, 0];
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.05);
        let logits = net.forward(&x).unwrap();
        let before = loss_fn.compute(&logits, &labels).unwrap();
        net.zero_grad();
        net.forward(&x).unwrap();
        net.backward(&before.grad_logits).unwrap();
        opt.step(&mut net.params_mut()).unwrap();
        let logits = net.forward(&x).unwrap();
        let after = loss_fn.compute(&logits, &labels).unwrap();
        prop_assert!(after.loss <= before.loss + 1e-6,
            "loss rose: {} -> {}", before.loss, after.loss);
    }
}

// SIMD-vs-scalar and fused-vs-unfused equivalence for the softmax
// cross-entropy kernel ported onto the dispatch layer. Both pairs are
// pinned bit-identical: the fused kernel stores the same `exp(v − max)`
// values the unfused kernel recomputed, reduces the denominator in the
// same ascending order, and scales with the same expression.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_softmax_xent_is_bit_identical_across_isas(
        n in 1usize..12,
        c in 1usize..40,
        seed in 0u64..1_000,
    ) {
        use gsfl_tensor::simd::Isa;
        let logits = Tensor::from_fn(&[n, c], |i| {
            (((i as u64).wrapping_mul(seed + 17) % 2000) as f32 - 1000.0) * 0.01
        });
        let labels: Vec<usize> = (0..n).map(|r| (r * 7 + seed as usize) % c).collect();
        let loss_fn = SoftmaxCrossEntropy::new();
        let fast = loss_fn.compute_with_isa(Isa::Avx2, &logits, &labels).unwrap();
        let slow = loss_fn.compute_with_isa(Isa::Scalar, &logits, &labels).unwrap();
        prop_assert_eq!(fast.loss.to_bits(), slow.loss.to_bits());
        for (x, y) in fast.grad_logits.data().iter().zip(slow.grad_logits.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_softmax_xent_matches_unfused_bitwise(
        n in 1usize..12,
        c in 1usize..40,
        seed in 0u64..1_000,
    ) {
        use gsfl_tensor::simd::Isa;
        let logits = Tensor::from_fn(&[n, c], |i| {
            (((i as u64).wrapping_mul(seed + 41) % 2000) as f32 - 1000.0) * 0.01
        });
        let labels: Vec<usize> = (0..n).map(|r| (r * 11 + seed as usize) % c).collect();
        let loss_fn = SoftmaxCrossEntropy::new();
        let unfused = loss_fn.compute_unfused(&logits, &labels).unwrap();
        for isa in [Isa::Scalar, Isa::Avx2] {
            let fused = loss_fn.compute_with_isa(isa, &logits, &labels).unwrap();
            prop_assert_eq!(fused.loss.to_bits(), unfused.loss.to_bits());
            for (x, y) in fused.grad_logits.data().iter().zip(unfused.grad_logits.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
