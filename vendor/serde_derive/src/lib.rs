//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde facade's `Serialize` /
//! `Deserialize` traits (concrete `Value` tree, no visitors) for the
//! shapes this workspace uses: named-field structs, tuple/newtype/unit
//! structs, and enums with unit, tuple and struct variants. Supports the
//! `#[serde(default)]` field attribute. Generics are not supported.
//!
//! Implemented directly on `proc_macro` token streams (no syn/quote in
//! the offline image): the item is parsed with a small hand-rolled token
//! walker and the impls are emitted as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    has_default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("serde derive supports struct/enum, got `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Splits a field/variant body at top-level commas (angle-bracket aware).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Whether a `#[...]` attribute group is `serde(default)`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut has_default = false;
            let mut j = 0;
            // Attributes and visibility.
            loop {
                match chunk.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        if let Some(TokenTree::Group(g)) = chunk.get(j + 1) {
                            has_default |= attr_is_serde_default(g);
                        }
                        j += 2;
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        j += 1;
                        if matches!(
                            chunk.get(j),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            j += 1;
                        }
                    }
                    _ => break,
                }
            }
            let name = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            };
            Field { name, has_default }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(obj)\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Array(vec![{items}]) }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let pushes: String = fields
                                .iter()
                                .map(|f| format!(
                                    "inner.push((\"{0}\".to_string(), ::serde::Serialize::to_value({0})));\n",
                                    f.name
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => {{\n\
                                   let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = Vec::new();\n\
                                   {pushes}\
                                   ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(inner))])\n\
                                 }}\n",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn named_fields_body(type_path: &str, fields: &[Field], source: &str) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.has_default {
                format!(
                    "{fname}: match ::serde::find({source}, \"{fname}\") {{\n\
                       Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                       None => ::std::default::Default::default(),\n\
                     }},\n"
                )
            } else {
                format!(
                    "{fname}: match ::serde::find({source}, \"{fname}\") {{\n\
                       Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                       None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                         .map_err(|_| ::serde::DeError::missing(\"{fname}\"))?,\n\
                     }},\n"
                )
            }
        })
        .collect();
    format!("Ok({type_path} {{\n{inits}}})")
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => (
            name.clone(),
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", v))?;\n{}",
                named_fields_body(name, fields, "obj")
            ),
        ),
        Item::TupleStruct { name, arity: 1 } => (
            name.clone(),
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let gets: String = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?,"))
                .collect();
            (
                name.clone(),
                format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?;\n\
                     if items.len() != {arity} {{\n\
                       return Err(::serde::DeError(format!(\"expected {arity} elements, got {{}}\", items.len())));\n\
                     }}\n\
                     Ok({name}({gets}))"
                ),
            )
        }
        Item::UnitStruct { name } => (name.clone(), format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),\n", v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let gets: String = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&items[{k}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                   let items = payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", payload))?;\n\
                                   if items.len() != {n} {{\n\
                                     return Err(::serde::DeError(format!(\"expected {n} elements, got {{}}\", items.len())));\n\
                                   }}\n\
                                   return Ok({name}::{vn}({gets}));\n\
                                 }}\n"
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let body = named_fields_body(
                                &format!("{name}::{vn}"),
                                fields,
                                "inner",
                            );
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                   let inner = payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", payload))?;\n\
                                   return {body};\n\
                                 }}\n"
                            ))
                        }
                    }
                })
                .collect();
            (
                name.clone(),
                format!(
                    "match v {{\n\
                       ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => return Err(::serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                       }},\n\
                       ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                         match tag.as_str() {{\n\
                           {data_arms}\
                           other => return Err(::serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                       }},\n\
                       other => return Err(::serde::DeError::expected(\"enum representation\", other)),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           #[allow(unreachable_code, clippy::needless_return)]\n\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             {body}\n\
           }}\n\
         }}"
    )
}
