//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro over named `arg in strategy`
//! bindings, range and collection strategies, `prop_map` /
//! `prop_flat_map` combinators, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated deterministically (seeded per test name);
//! there is no shrinking — a failing case reports its assertion message
//! only.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG driving case generation.
pub type TestRng = ChaCha8Rng;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Give up after this many consecutive rejections.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u32, u64, i32, i64, f32, f64);

/// A length range for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// A `Vec` strategy over an element strategy and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Alias so `prop::collection::vec(...)` resolves after a prelude glob.
pub mod prop {
    pub use crate::collection;
}

/// Runs one property test: generates cases until `config.cases` are
/// accepted, panicking on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-name seed (FNV-1a).
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {accepted}: {msg}");
            }
        }
    }
}

/// Defines property tests over `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(config, stringify!($name), |proptest_rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), proptest_rng); )*
                    $body
                    Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Rejects the current case (a fresh one is generated instead).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject(
                concat!("assume failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0u32..5, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_chains(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i32..10, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::prop::collection::vec(0u64..1000, 1..8);
        let mut a = crate::TestRng::seed_from_u64(1);
        let mut b = crate::TestRng::seed_from_u64(1);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
