//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor
//! traits with little-endian accessors.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps an owned vector without copying.
    pub fn from_vec(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

/// A growable byte buffer with little-endian put accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; `get_*` calls consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending little-endian values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 16);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f32_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b = Bytes::from_vec(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
