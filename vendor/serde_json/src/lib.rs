//! Offline stand-in for `serde_json`: renders the vendored serde
//! [`Value`] model to JSON text and parses it back. Floats are printed
//! with Rust's shortest round-trip formatting, so `to_string` →
//! `from_str` reproduces every finite `f64` bit-for-bit.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Crate result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserializes from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error("non-finite float cannot be serialized".into()));
            }
            // Rust's shortest round-trip formatting; integral floats keep
            // a `.0` so the value re-parses as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 2.0f64.powi(53) + 2.0, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let v = parse("2.0").unwrap();
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn nested_structures() {
        let v = parse("{\"a\": [1, 2.5, null], \"b\": {\"c\": false}}").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert_eq!(serde::find(obj, "a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn pretty_output_parses_back() {
        let xs = vec![1usize, 2, 3];
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<usize>>(&pretty).unwrap(), xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }
}
