//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator behind the [`ChaCha8Rng`] name, seeded from a 64-bit seed via
//! SplitMix64 key expansion. Deterministic across platforms; not
//! stream-compatible with crates.io `rand_chacha`.

pub use rand::{RngCore, SeedableRng};

pub mod rand_core {
    //! Re-exports mirroring `rand_chacha::rand_core`.
    pub use rand::{RngCore, SeedableRng};
}

/// A ChaCha stream cipher RNG with 8 double-rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 forces a refill.
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Builds the generator from a 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // words 12..16: block counter + nonce, all zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.block = x;
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn keystream_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn uniform_floats_behave() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = rng.next_u64();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
