//! Offline stand-in for the `serde` facade.
//!
//! The real serde visitor architecture is replaced by a concrete
//! [`Value`] tree: [`Serialize`] renders a type into a `Value`,
//! [`Deserialize`] rebuilds it, and the `serde_json` stand-in maps
//! `Value` to and from JSON text. The derive macros (re-exported from
//! `serde_derive`) generate the same external representation serde_json
//! would: structs as objects, unit enum variants as strings, data-carrying
//! variants as single-key objects, newtype structs as their payload.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up `key` in an object's entries.
pub fn find<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, got Y" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// Missing-field error.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders a value into the [`Value`] data model.
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses from a serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or range mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Value::Int(i)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range")))
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f32::from_value(&0.05f32.to_value()).unwrap(), 0.05f32);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_and_vec() {
        let v: Option<f64> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
