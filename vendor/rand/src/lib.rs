//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The container image has no crates-io access, so the workspace
//! vendors the few interfaces it needs: [`RngCore`], [`SeedableRng`],
//! [`Rng`] (uniform `gen`/`gen_range`) and [`seq::SliceRandom`]
//! (Fisher–Yates `shuffle`, `choose`).
//!
//! Determinism is the only contract: given the same seed, every method
//! produces the same stream on every platform. Output is *not* bit-for-bit
//! compatible with crates.io `rand`.

/// Low-level uniform generator interface.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Uniform: Sized {
    /// Draws one uniform value from `rng`.
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for f64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Uniform for u32 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Uniform for u64 {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for bool {
    fn uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Uniform>::uniform(rng) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                a + <$t as Uniform>::uniform(rng) * (b - a)
            }
        }
    };
}

float_range!(f32);
float_range!(f64);

/// Uniform integer in `[0, bound)` via 128-bit widening multiply
/// (Lemire's method, without the bias-correcting rejection loop — fine
/// for simulation workloads).
fn below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                let span = (b as i128 - a as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (a as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    };
}

int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i64);
int_range!(i32);

/// High-level sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` (floats in `[0,1)`).
    fn gen<T: Uniform>(&mut self) -> T {
        T::uniform(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence sampling: shuffling and choosing.

    use super::{below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let a = rng.gen_range(5usize..9);
            assert!((5..9).contains(&a));
            let b = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&b));
            let c = rng.gen_range(0u64..=u64::MAX);
            let _ = c;
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = Counter(11);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
