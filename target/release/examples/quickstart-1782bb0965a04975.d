/root/repo/target/release/examples/quickstart-1782bb0965a04975.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1782bb0965a04975: examples/quickstart.rs

examples/quickstart.rs:
