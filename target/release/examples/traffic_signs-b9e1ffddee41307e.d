/root/repo/target/release/examples/traffic_signs-b9e1ffddee41307e.d: examples/traffic_signs.rs

/root/repo/target/release/examples/traffic_signs-b9e1ffddee41307e: examples/traffic_signs.rs

examples/traffic_signs.rs:
