/root/repo/target/release/examples/budgeted_training-2427f5b1d9a84327.d: examples/budgeted_training.rs

/root/repo/target/release/examples/budgeted_training-2427f5b1d9a84327: examples/budgeted_training.rs

examples/budgeted_training.rs:
