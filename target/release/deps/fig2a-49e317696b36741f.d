/root/repo/target/release/deps/fig2a-49e317696b36741f.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/release/deps/fig2a-49e317696b36741f: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:
