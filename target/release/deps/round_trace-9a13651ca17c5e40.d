/root/repo/target/release/deps/round_trace-9a13651ca17c5e40.d: crates/bench/src/bin/round_trace.rs

/root/repo/target/release/deps/round_trace-9a13651ca17c5e40: crates/bench/src/bin/round_trace.rs

crates/bench/src/bin/round_trace.rs:
