/root/repo/target/release/deps/serde_derive-453a89d77fb21d7b.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-453a89d77fb21d7b.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
