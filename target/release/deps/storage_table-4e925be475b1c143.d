/root/repo/target/release/deps/storage_table-4e925be475b1c143.d: crates/bench/src/bin/storage_table.rs

/root/repo/target/release/deps/storage_table-4e925be475b1c143: crates/bench/src/bin/storage_table.rs

crates/bench/src/bin/storage_table.rs:
