/root/repo/target/release/deps/gsfl_simnet-21b219b60f26729e.d: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/release/deps/libgsfl_simnet-21b219b60f26729e.rlib: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/release/deps/libgsfl_simnet-21b219b60f26729e.rmeta: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/error.rs:
crates/simnet/src/graph.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
