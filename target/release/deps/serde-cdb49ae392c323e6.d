/root/repo/target/release/deps/serde-cdb49ae392c323e6.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cdb49ae392c323e6.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cdb49ae392c323e6.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
