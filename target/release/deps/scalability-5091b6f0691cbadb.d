/root/repo/target/release/deps/scalability-5091b6f0691cbadb.d: crates/bench/src/bin/scalability.rs

/root/repo/target/release/deps/scalability-5091b6f0691cbadb: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
