/root/repo/target/release/deps/serde_derive-5573c3463fab2fa1.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-5573c3463fab2fa1.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
