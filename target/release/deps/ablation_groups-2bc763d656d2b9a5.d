/root/repo/target/release/deps/ablation_groups-2bc763d656d2b9a5.d: crates/bench/src/bin/ablation_groups.rs

/root/repo/target/release/deps/ablation_groups-2bc763d656d2b9a5: crates/bench/src/bin/ablation_groups.rs

crates/bench/src/bin/ablation_groups.rs:
