/root/repo/target/release/deps/serde_json-9fbcd573d1905cca.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9fbcd573d1905cca.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-9fbcd573d1905cca.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
