/root/repo/target/release/deps/fig2b-5ab6cb2dd10d861f.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/release/deps/fig2b-5ab6cb2dd10d861f: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
