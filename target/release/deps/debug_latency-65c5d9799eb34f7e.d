/root/repo/target/release/deps/debug_latency-65c5d9799eb34f7e.d: crates/bench/src/bin/debug_latency.rs

/root/repo/target/release/deps/debug_latency-65c5d9799eb34f7e: crates/bench/src/bin/debug_latency.rs

crates/bench/src/bin/debug_latency.rs:
