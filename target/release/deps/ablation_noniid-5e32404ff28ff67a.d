/root/repo/target/release/deps/ablation_noniid-5e32404ff28ff67a.d: crates/bench/src/bin/ablation_noniid.rs

/root/repo/target/release/deps/ablation_noniid-5e32404ff28ff67a: crates/bench/src/bin/ablation_noniid.rs

crates/bench/src/bin/ablation_noniid.rs:
