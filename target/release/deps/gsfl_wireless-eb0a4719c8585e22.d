/root/repo/target/release/deps/gsfl_wireless-eb0a4719c8585e22.d: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs

/root/repo/target/release/deps/libgsfl_wireless-eb0a4719c8585e22.rlib: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs

/root/repo/target/release/deps/libgsfl_wireless-eb0a4719c8585e22.rmeta: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs

crates/wireless/src/lib.rs:
crates/wireless/src/error.rs:
crates/wireless/src/allocation.rs:
crates/wireless/src/device.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/fading.rs:
crates/wireless/src/latency.rs:
crates/wireless/src/link.rs:
crates/wireless/src/pathloss.rs:
crates/wireless/src/server.rs:
crates/wireless/src/topology.rs:
crates/wireless/src/units.rs:
