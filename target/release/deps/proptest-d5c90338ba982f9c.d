/root/repo/target/release/deps/proptest-d5c90338ba982f9c.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d5c90338ba982f9c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d5c90338ba982f9c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
