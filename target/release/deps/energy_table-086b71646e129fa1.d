/root/repo/target/release/deps/energy_table-086b71646e129fa1.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/release/deps/energy_table-086b71646e129fa1: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
