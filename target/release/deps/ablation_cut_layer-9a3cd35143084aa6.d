/root/repo/target/release/deps/ablation_cut_layer-9a3cd35143084aa6.d: crates/bench/src/bin/ablation_cut_layer.rs

/root/repo/target/release/deps/ablation_cut_layer-9a3cd35143084aa6: crates/bench/src/bin/ablation_cut_layer.rs

crates/bench/src/bin/ablation_cut_layer.rs:
