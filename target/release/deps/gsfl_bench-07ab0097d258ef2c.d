/root/repo/target/release/deps/gsfl_bench-07ab0097d258ef2c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgsfl_bench-07ab0097d258ef2c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgsfl_bench-07ab0097d258ef2c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
