/root/repo/target/release/deps/gsfl-f63d278a83f6eb1f.d: src/lib.rs

/root/repo/target/release/deps/libgsfl-f63d278a83f6eb1f.rlib: src/lib.rs

/root/repo/target/release/deps/libgsfl-f63d278a83f6eb1f.rmeta: src/lib.rs

src/lib.rs:
