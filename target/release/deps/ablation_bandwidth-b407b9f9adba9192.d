/root/repo/target/release/deps/ablation_bandwidth-b407b9f9adba9192.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/release/deps/ablation_bandwidth-b407b9f9adba9192: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
