/root/repo/target/release/deps/ablation_availability-c556950d785366a6.d: crates/bench/src/bin/ablation_availability.rs

/root/repo/target/release/deps/ablation_availability-c556950d785366a6: crates/bench/src/bin/ablation_availability.rs

crates/bench/src/bin/ablation_availability.rs:
