/root/repo/target/release/deps/gsfl_tensor-375786f73c125f2a.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libgsfl_tensor-375786f73c125f2a.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/release/deps/libgsfl_tensor-375786f73c125f2a.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/io.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
