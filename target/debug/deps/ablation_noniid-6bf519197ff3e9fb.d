/root/repo/target/debug/deps/ablation_noniid-6bf519197ff3e9fb.d: crates/bench/src/bin/ablation_noniid.rs

/root/repo/target/debug/deps/ablation_noniid-6bf519197ff3e9fb: crates/bench/src/bin/ablation_noniid.rs

crates/bench/src/bin/ablation_noniid.rs:
