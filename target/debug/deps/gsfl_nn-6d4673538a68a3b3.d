/root/repo/target/debug/deps/gsfl_nn-6d4673538a68a3b3.d: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/sequential.rs crates/nn/src/flops.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/pool.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model/mod.rs crates/nn/src/model/deepthin.rs crates/nn/src/model/mlp.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/split.rs

/root/repo/target/debug/deps/libgsfl_nn-6d4673538a68a3b3.rlib: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/sequential.rs crates/nn/src/flops.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/pool.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model/mod.rs crates/nn/src/model/deepthin.rs crates/nn/src/model/mlp.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/split.rs

/root/repo/target/debug/deps/libgsfl_nn-6d4673538a68a3b3.rmeta: crates/nn/src/lib.rs crates/nn/src/error.rs crates/nn/src/param.rs crates/nn/src/sequential.rs crates/nn/src/flops.rs crates/nn/src/layer.rs crates/nn/src/layers/mod.rs crates/nn/src/layers/activation.rs crates/nn/src/layers/batchnorm.rs crates/nn/src/layers/conv2d.rs crates/nn/src/layers/dense.rs crates/nn/src/layers/dropout.rs crates/nn/src/layers/flatten.rs crates/nn/src/layers/pool.rs crates/nn/src/loss.rs crates/nn/src/metrics.rs crates/nn/src/model/mod.rs crates/nn/src/model/deepthin.rs crates/nn/src/model/mlp.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/split.rs

crates/nn/src/lib.rs:
crates/nn/src/error.rs:
crates/nn/src/param.rs:
crates/nn/src/sequential.rs:
crates/nn/src/flops.rs:
crates/nn/src/layer.rs:
crates/nn/src/layers/mod.rs:
crates/nn/src/layers/activation.rs:
crates/nn/src/layers/batchnorm.rs:
crates/nn/src/layers/conv2d.rs:
crates/nn/src/layers/dense.rs:
crates/nn/src/layers/dropout.rs:
crates/nn/src/layers/flatten.rs:
crates/nn/src/layers/pool.rs:
crates/nn/src/loss.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model/mod.rs:
crates/nn/src/model/deepthin.rs:
crates/nn/src/model/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
crates/nn/src/split.rs:
