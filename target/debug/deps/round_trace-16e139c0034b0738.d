/root/repo/target/debug/deps/round_trace-16e139c0034b0738.d: crates/bench/src/bin/round_trace.rs

/root/repo/target/debug/deps/round_trace-16e139c0034b0738: crates/bench/src/bin/round_trace.rs

crates/bench/src/bin/round_trace.rs:
