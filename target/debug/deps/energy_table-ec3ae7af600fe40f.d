/root/repo/target/debug/deps/energy_table-ec3ae7af600fe40f.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-ec3ae7af600fe40f: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
