/root/repo/target/debug/deps/gsfl-e5d840a5710f4396.d: src/lib.rs

/root/repo/target/debug/deps/libgsfl-e5d840a5710f4396.rlib: src/lib.rs

/root/repo/target/debug/deps/libgsfl-e5d840a5710f4396.rmeta: src/lib.rs

src/lib.rs:
