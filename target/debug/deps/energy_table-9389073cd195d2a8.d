/root/repo/target/debug/deps/energy_table-9389073cd195d2a8.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-9389073cd195d2a8: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
