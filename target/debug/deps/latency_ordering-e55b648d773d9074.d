/root/repo/target/debug/deps/latency_ordering-e55b648d773d9074.d: tests/latency_ordering.rs Cargo.toml

/root/repo/target/debug/deps/liblatency_ordering-e55b648d773d9074.rmeta: tests/latency_ordering.rs Cargo.toml

tests/latency_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
