/root/repo/target/debug/deps/serde_json-c0de05f6b7a2cca8.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c0de05f6b7a2cca8.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c0de05f6b7a2cca8.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
