/root/repo/target/debug/deps/debug_latency-19aee8e602381724.d: crates/bench/src/bin/debug_latency.rs

/root/repo/target/debug/deps/debug_latency-19aee8e602381724: crates/bench/src/bin/debug_latency.rs

crates/bench/src/bin/debug_latency.rs:
