/root/repo/target/debug/deps/gsfl_bench-6418af40c5ac877d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-6418af40c5ac877d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-6418af40c5ac877d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
