/root/repo/target/debug/deps/gsfl_data-0425e519215e00e5.d: crates/data/src/lib.rs crates/data/src/error.rs crates/data/src/batcher.rs crates/data/src/dataset.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/palette.rs crates/data/src/synth/shapes.rs crates/data/src/synth/spec.rs

/root/repo/target/debug/deps/libgsfl_data-0425e519215e00e5.rlib: crates/data/src/lib.rs crates/data/src/error.rs crates/data/src/batcher.rs crates/data/src/dataset.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/palette.rs crates/data/src/synth/shapes.rs crates/data/src/synth/spec.rs

/root/repo/target/debug/deps/libgsfl_data-0425e519215e00e5.rmeta: crates/data/src/lib.rs crates/data/src/error.rs crates/data/src/batcher.rs crates/data/src/dataset.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/palette.rs crates/data/src/synth/shapes.rs crates/data/src/synth/spec.rs

crates/data/src/lib.rs:
crates/data/src/error.rs:
crates/data/src/batcher.rs:
crates/data/src/dataset.rs:
crates/data/src/partition.rs:
crates/data/src/stats.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/palette.rs:
crates/data/src/synth/shapes.rs:
crates/data/src/synth/spec.rs:
