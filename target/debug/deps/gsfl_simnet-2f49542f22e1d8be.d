/root/repo/target/debug/deps/gsfl_simnet-2f49542f22e1d8be.d: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libgsfl_simnet-2f49542f22e1d8be.rlib: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libgsfl_simnet-2f49542f22e1d8be.rmeta: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/error.rs:
crates/simnet/src/graph.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
