/root/repo/target/debug/deps/ablation_cut_layer-7d9a6f01bb773f16.d: crates/bench/src/bin/ablation_cut_layer.rs

/root/repo/target/debug/deps/ablation_cut_layer-7d9a6f01bb773f16: crates/bench/src/bin/ablation_cut_layer.rs

crates/bench/src/bin/ablation_cut_layer.rs:
