/root/repo/target/debug/deps/serde_json-44f7182f86e17e2b.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-44f7182f86e17e2b.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-44f7182f86e17e2b.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
