/root/repo/target/debug/deps/ablation_cut_layer-829984634ff5d0e6.d: crates/bench/src/bin/ablation_cut_layer.rs

/root/repo/target/debug/deps/ablation_cut_layer-829984634ff5d0e6: crates/bench/src/bin/ablation_cut_layer.rs

crates/bench/src/bin/ablation_cut_layer.rs:
