/root/repo/target/debug/deps/gsfl-ff57c73cf4a269ca.d: src/lib.rs

/root/repo/target/debug/deps/libgsfl-ff57c73cf4a269ca.rlib: src/lib.rs

/root/repo/target/debug/deps/libgsfl-ff57c73cf4a269ca.rmeta: src/lib.rs

src/lib.rs:
