/root/repo/target/debug/deps/ablation_noniid-e9e1d17fd41b892e.d: crates/bench/src/bin/ablation_noniid.rs Cargo.toml

/root/repo/target/debug/deps/libablation_noniid-e9e1d17fd41b892e.rmeta: crates/bench/src/bin/ablation_noniid.rs Cargo.toml

crates/bench/src/bin/ablation_noniid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
