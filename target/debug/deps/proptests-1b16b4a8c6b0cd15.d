/root/repo/target/debug/deps/proptests-1b16b4a8c6b0cd15.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1b16b4a8c6b0cd15: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
