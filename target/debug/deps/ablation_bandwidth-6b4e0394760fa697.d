/root/repo/target/debug/deps/ablation_bandwidth-6b4e0394760fa697.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-6b4e0394760fa697: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
