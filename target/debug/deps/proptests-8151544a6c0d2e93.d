/root/repo/target/debug/deps/proptests-8151544a6c0d2e93.d: crates/simnet/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8151544a6c0d2e93: crates/simnet/tests/proptests.rs

crates/simnet/tests/proptests.rs:
