/root/repo/target/debug/deps/energy_table-77b8b683ebb20fff.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-77b8b683ebb20fff: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
