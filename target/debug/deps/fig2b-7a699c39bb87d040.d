/root/repo/target/debug/deps/fig2b-7a699c39bb87d040.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-7a699c39bb87d040: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
