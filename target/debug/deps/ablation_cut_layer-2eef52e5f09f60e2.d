/root/repo/target/debug/deps/ablation_cut_layer-2eef52e5f09f60e2.d: crates/bench/src/bin/ablation_cut_layer.rs

/root/repo/target/debug/deps/ablation_cut_layer-2eef52e5f09f60e2: crates/bench/src/bin/ablation_cut_layer.rs

crates/bench/src/bin/ablation_cut_layer.rs:
