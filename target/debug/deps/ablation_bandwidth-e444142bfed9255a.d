/root/repo/target/debug/deps/ablation_bandwidth-e444142bfed9255a.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-e444142bfed9255a: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
