/root/repo/target/debug/deps/fig2a-45d90b48f6cf3e20.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/debug/deps/fig2a-45d90b48f6cf3e20: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:
