/root/repo/target/debug/deps/round_trace-79849302e2646292.d: crates/bench/src/bin/round_trace.rs Cargo.toml

/root/repo/target/debug/deps/libround_trace-79849302e2646292.rmeta: crates/bench/src/bin/round_trace.rs Cargo.toml

crates/bench/src/bin/round_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
