/root/repo/target/debug/deps/ablation_bandwidth-2e4c0840aa2f64ec.d: crates/bench/src/bin/ablation_bandwidth.rs

/root/repo/target/debug/deps/ablation_bandwidth-2e4c0840aa2f64ec: crates/bench/src/bin/ablation_bandwidth.rs

crates/bench/src/bin/ablation_bandwidth.rs:
