/root/repo/target/debug/deps/scalability-62357ae941fef61b.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-62357ae941fef61b: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
