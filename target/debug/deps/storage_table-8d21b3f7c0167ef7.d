/root/repo/target/debug/deps/storage_table-8d21b3f7c0167ef7.d: crates/bench/src/bin/storage_table.rs

/root/repo/target/debug/deps/storage_table-8d21b3f7c0167ef7: crates/bench/src/bin/storage_table.rs

crates/bench/src/bin/storage_table.rs:
