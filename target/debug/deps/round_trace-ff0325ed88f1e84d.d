/root/repo/target/debug/deps/round_trace-ff0325ed88f1e84d.d: crates/bench/src/bin/round_trace.rs Cargo.toml

/root/repo/target/debug/deps/libround_trace-ff0325ed88f1e84d.rmeta: crates/bench/src/bin/round_trace.rs Cargo.toml

crates/bench/src/bin/round_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
