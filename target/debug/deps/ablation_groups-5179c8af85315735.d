/root/repo/target/debug/deps/ablation_groups-5179c8af85315735.d: crates/bench/src/bin/ablation_groups.rs

/root/repo/target/debug/deps/ablation_groups-5179c8af85315735: crates/bench/src/bin/ablation_groups.rs

crates/bench/src/bin/ablation_groups.rs:
