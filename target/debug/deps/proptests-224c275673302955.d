/root/repo/target/debug/deps/proptests-224c275673302955.d: crates/data/tests/proptests.rs

/root/repo/target/debug/deps/proptests-224c275673302955: crates/data/tests/proptests.rs

crates/data/tests/proptests.rs:
