/root/repo/target/debug/deps/availability-792cbbcb5082078b.d: tests/availability.rs

/root/repo/target/debug/deps/availability-792cbbcb5082078b: tests/availability.rs

tests/availability.rs:
