/root/repo/target/debug/deps/gsfl_tensor-4198b8390bee6bf6.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/gsfl_tensor-4198b8390bee6bf6: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/io.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
