/root/repo/target/debug/deps/gsfl_simnet-d781da78e0bf605a.d: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl_simnet-d781da78e0bf605a.rmeta: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/error.rs:
crates/simnet/src/graph.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
