/root/repo/target/debug/deps/scalability-5e9be783e98d6947.d: crates/bench/src/bin/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-5e9be783e98d6947.rmeta: crates/bench/src/bin/scalability.rs Cargo.toml

crates/bench/src/bin/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
