/root/repo/target/debug/deps/proptests-229c59ff6aa136ad.d: crates/simnet/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-229c59ff6aa136ad.rmeta: crates/simnet/tests/proptests.rs Cargo.toml

crates/simnet/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
