/root/repo/target/debug/deps/round_trace-ef2fa0fac95eeedb.d: crates/bench/src/bin/round_trace.rs

/root/repo/target/debug/deps/round_trace-ef2fa0fac95eeedb: crates/bench/src/bin/round_trace.rs

crates/bench/src/bin/round_trace.rs:
