/root/repo/target/debug/deps/gsfl_wireless-043985a2b9a0053f.d: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl_wireless-043985a2b9a0053f.rmeta: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs Cargo.toml

crates/wireless/src/lib.rs:
crates/wireless/src/error.rs:
crates/wireless/src/allocation.rs:
crates/wireless/src/device.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/fading.rs:
crates/wireless/src/latency.rs:
crates/wireless/src/link.rs:
crates/wireless/src/pathloss.rs:
crates/wireless/src/server.rs:
crates/wireless/src/topology.rs:
crates/wireless/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
