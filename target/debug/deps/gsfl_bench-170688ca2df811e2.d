/root/repo/target/debug/deps/gsfl_bench-170688ca2df811e2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/gsfl_bench-170688ca2df811e2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
