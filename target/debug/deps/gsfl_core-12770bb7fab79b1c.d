/root/repo/target/debug/deps/gsfl_core-12770bb7fab79b1c.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/aggregate.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/grouping.rs crates/core/src/latency.rs crates/core/src/results.rs crates/core/src/runner.rs crates/core/src/scheme/mod.rs crates/core/src/scheme/centralized.rs crates/core/src/scheme/common.rs crates/core/src/scheme/federated.rs crates/core/src/scheme/gsfl.rs crates/core/src/scheme/split.rs crates/core/src/scheme/splitfed.rs crates/core/src/stop.rs crates/core/src/storage.rs

/root/repo/target/debug/deps/gsfl_core-12770bb7fab79b1c: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/aggregate.rs crates/core/src/config.rs crates/core/src/context.rs crates/core/src/grouping.rs crates/core/src/latency.rs crates/core/src/results.rs crates/core/src/runner.rs crates/core/src/scheme/mod.rs crates/core/src/scheme/centralized.rs crates/core/src/scheme/common.rs crates/core/src/scheme/federated.rs crates/core/src/scheme/gsfl.rs crates/core/src/scheme/split.rs crates/core/src/scheme/splitfed.rs crates/core/src/stop.rs crates/core/src/storage.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/aggregate.rs:
crates/core/src/config.rs:
crates/core/src/context.rs:
crates/core/src/grouping.rs:
crates/core/src/latency.rs:
crates/core/src/results.rs:
crates/core/src/runner.rs:
crates/core/src/scheme/mod.rs:
crates/core/src/scheme/centralized.rs:
crates/core/src/scheme/common.rs:
crates/core/src/scheme/federated.rs:
crates/core/src/scheme/gsfl.rs:
crates/core/src/scheme/split.rs:
crates/core/src/scheme/splitfed.rs:
crates/core/src/stop.rs:
crates/core/src/storage.rs:
