/root/repo/target/debug/deps/gsfl_bench-04c5f1175f9e1413.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-04c5f1175f9e1413.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-04c5f1175f9e1413.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
