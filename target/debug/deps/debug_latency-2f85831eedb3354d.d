/root/repo/target/debug/deps/debug_latency-2f85831eedb3354d.d: crates/bench/src/bin/debug_latency.rs

/root/repo/target/debug/deps/debug_latency-2f85831eedb3354d: crates/bench/src/bin/debug_latency.rs

crates/bench/src/bin/debug_latency.rs:
