/root/repo/target/debug/deps/serde-fdd6e7ea845b87f6.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fdd6e7ea845b87f6.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-fdd6e7ea845b87f6.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
