/root/repo/target/debug/deps/round_trace-2554de67b5492b8a.d: crates/bench/src/bin/round_trace.rs

/root/repo/target/debug/deps/round_trace-2554de67b5492b8a: crates/bench/src/bin/round_trace.rs

crates/bench/src/bin/round_trace.rs:
