/root/repo/target/debug/deps/ablation_availability-757df92fa77d2e0a.d: crates/bench/src/bin/ablation_availability.rs

/root/repo/target/debug/deps/ablation_availability-757df92fa77d2e0a: crates/bench/src/bin/ablation_availability.rs

crates/bench/src/bin/ablation_availability.rs:
