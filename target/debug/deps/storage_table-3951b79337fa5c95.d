/root/repo/target/debug/deps/storage_table-3951b79337fa5c95.d: crates/bench/src/bin/storage_table.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_table-3951b79337fa5c95.rmeta: crates/bench/src/bin/storage_table.rs Cargo.toml

crates/bench/src/bin/storage_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
