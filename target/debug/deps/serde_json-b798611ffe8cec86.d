/root/repo/target/debug/deps/serde_json-b798611ffe8cec86.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-b798611ffe8cec86: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
