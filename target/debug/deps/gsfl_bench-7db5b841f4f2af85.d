/root/repo/target/debug/deps/gsfl_bench-7db5b841f4f2af85.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl_bench-7db5b841f4f2af85.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
