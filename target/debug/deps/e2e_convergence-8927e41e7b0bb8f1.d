/root/repo/target/debug/deps/e2e_convergence-8927e41e7b0bb8f1.d: tests/e2e_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libe2e_convergence-8927e41e7b0bb8f1.rmeta: tests/e2e_convergence.rs Cargo.toml

tests/e2e_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
