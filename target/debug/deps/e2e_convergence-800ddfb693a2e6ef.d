/root/repo/target/debug/deps/e2e_convergence-800ddfb693a2e6ef.d: tests/e2e_convergence.rs

/root/repo/target/debug/deps/e2e_convergence-800ddfb693a2e6ef: tests/e2e_convergence.rs

tests/e2e_convergence.rs:
