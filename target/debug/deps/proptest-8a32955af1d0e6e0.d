/root/repo/target/debug/deps/proptest-8a32955af1d0e6e0.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8a32955af1d0e6e0.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8a32955af1d0e6e0.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
