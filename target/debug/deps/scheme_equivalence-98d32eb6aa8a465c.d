/root/repo/target/debug/deps/scheme_equivalence-98d32eb6aa8a465c.d: tests/scheme_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_equivalence-98d32eb6aa8a465c.rmeta: tests/scheme_equivalence.rs Cargo.toml

tests/scheme_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
