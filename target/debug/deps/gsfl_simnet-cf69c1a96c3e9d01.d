/root/repo/target/debug/deps/gsfl_simnet-cf69c1a96c3e9d01.d: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libgsfl_simnet-cf69c1a96c3e9d01.rlib: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/libgsfl_simnet-cf69c1a96c3e9d01.rmeta: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/error.rs:
crates/simnet/src/graph.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
