/root/repo/target/debug/deps/availability-3389e3b546f2561e.d: tests/availability.rs Cargo.toml

/root/repo/target/debug/deps/libavailability-3389e3b546f2561e.rmeta: tests/availability.rs Cargo.toml

tests/availability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
