/root/repo/target/debug/deps/ablation_noniid-ade48dc218495574.d: crates/bench/src/bin/ablation_noniid.rs

/root/repo/target/debug/deps/ablation_noniid-ade48dc218495574: crates/bench/src/bin/ablation_noniid.rs

crates/bench/src/bin/ablation_noniid.rs:
