/root/repo/target/debug/deps/serde_derive-259f6d3e5edeac06.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-259f6d3e5edeac06.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
