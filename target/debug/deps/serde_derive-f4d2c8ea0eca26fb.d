/root/repo/target/debug/deps/serde_derive-f4d2c8ea0eca26fb.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-f4d2c8ea0eca26fb: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
