/root/repo/target/debug/deps/fig2a-3efedeea97c4d7aa.d: crates/bench/src/bin/fig2a.rs Cargo.toml

/root/repo/target/debug/deps/libfig2a-3efedeea97c4d7aa.rmeta: crates/bench/src/bin/fig2a.rs Cargo.toml

crates/bench/src/bin/fig2a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
