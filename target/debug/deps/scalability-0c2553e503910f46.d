/root/repo/target/debug/deps/scalability-0c2553e503910f46.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-0c2553e503910f46: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
