/root/repo/target/debug/deps/fig2b-f893417c7245e56d.d: crates/bench/src/bin/fig2b.rs Cargo.toml

/root/repo/target/debug/deps/libfig2b-f893417c7245e56d.rmeta: crates/bench/src/bin/fig2b.rs Cargo.toml

crates/bench/src/bin/fig2b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
