/root/repo/target/debug/deps/proptests-9bf38531ee483d6b.d: crates/data/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9bf38531ee483d6b.rmeta: crates/data/tests/proptests.rs Cargo.toml

crates/data/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
