/root/repo/target/debug/deps/fig2b-cdfb451f87360f3f.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-cdfb451f87360f3f: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
