/root/repo/target/debug/deps/proptests-9fad3b23dcb4f0d2.d: crates/wireless/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9fad3b23dcb4f0d2.rmeta: crates/wireless/tests/proptests.rs Cargo.toml

crates/wireless/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
