/root/repo/target/debug/deps/serde-94dc389733f2fbf6.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-94dc389733f2fbf6.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
