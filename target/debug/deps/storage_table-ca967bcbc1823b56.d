/root/repo/target/debug/deps/storage_table-ca967bcbc1823b56.d: crates/bench/src/bin/storage_table.rs

/root/repo/target/debug/deps/storage_table-ca967bcbc1823b56: crates/bench/src/bin/storage_table.rs

crates/bench/src/bin/storage_table.rs:
