/root/repo/target/debug/deps/ablation_cut_layer-907752439fad1c1e.d: crates/bench/src/bin/ablation_cut_layer.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cut_layer-907752439fad1c1e.rmeta: crates/bench/src/bin/ablation_cut_layer.rs Cargo.toml

crates/bench/src/bin/ablation_cut_layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
