/root/repo/target/debug/deps/gsfl_bench-f4d2d17852428afe.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl_bench-f4d2d17852428afe.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
