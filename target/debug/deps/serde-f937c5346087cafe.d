/root/repo/target/debug/deps/serde-f937c5346087cafe.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-f937c5346087cafe.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
