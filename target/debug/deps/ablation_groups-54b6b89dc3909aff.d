/root/repo/target/debug/deps/ablation_groups-54b6b89dc3909aff.d: crates/bench/src/bin/ablation_groups.rs Cargo.toml

/root/repo/target/debug/deps/libablation_groups-54b6b89dc3909aff.rmeta: crates/bench/src/bin/ablation_groups.rs Cargo.toml

crates/bench/src/bin/ablation_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
