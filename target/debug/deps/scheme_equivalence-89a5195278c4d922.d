/root/repo/target/debug/deps/scheme_equivalence-89a5195278c4d922.d: tests/scheme_equivalence.rs

/root/repo/target/debug/deps/scheme_equivalence-89a5195278c4d922: tests/scheme_equivalence.rs

tests/scheme_equivalence.rs:
