/root/repo/target/debug/deps/gsfl_bench-a136c083adebad57.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-a136c083adebad57.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-a136c083adebad57.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
