/root/repo/target/debug/deps/gsfl_tensor-47edb7ac5a2b3f2e.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl_tensor-47edb7ac5a2b3f2e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/io.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
