/root/repo/target/debug/deps/session_api-5b1bf52fdf898599.d: tests/session_api.rs Cargo.toml

/root/repo/target/debug/deps/libsession_api-5b1bf52fdf898599.rmeta: tests/session_api.rs Cargo.toml

tests/session_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
