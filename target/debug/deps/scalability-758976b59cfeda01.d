/root/repo/target/debug/deps/scalability-758976b59cfeda01.d: crates/bench/src/bin/scalability.rs

/root/repo/target/debug/deps/scalability-758976b59cfeda01: crates/bench/src/bin/scalability.rs

crates/bench/src/bin/scalability.rs:
