/root/repo/target/debug/deps/ablation_availability-b10be1ad46f3ad7e.d: crates/bench/src/bin/ablation_availability.rs

/root/repo/target/debug/deps/ablation_availability-b10be1ad46f3ad7e: crates/bench/src/bin/ablation_availability.rs

crates/bench/src/bin/ablation_availability.rs:
