/root/repo/target/debug/deps/debug_latency-cb5ace6b30846523.d: crates/bench/src/bin/debug_latency.rs

/root/repo/target/debug/deps/debug_latency-cb5ace6b30846523: crates/bench/src/bin/debug_latency.rs

crates/bench/src/bin/debug_latency.rs:
