/root/repo/target/debug/deps/gsfl_data-aa5737810e2e8d5a.d: crates/data/src/lib.rs crates/data/src/error.rs crates/data/src/batcher.rs crates/data/src/dataset.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/palette.rs crates/data/src/synth/shapes.rs crates/data/src/synth/spec.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl_data-aa5737810e2e8d5a.rmeta: crates/data/src/lib.rs crates/data/src/error.rs crates/data/src/batcher.rs crates/data/src/dataset.rs crates/data/src/partition.rs crates/data/src/stats.rs crates/data/src/synth/mod.rs crates/data/src/synth/palette.rs crates/data/src/synth/shapes.rs crates/data/src/synth/spec.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/error.rs:
crates/data/src/batcher.rs:
crates/data/src/dataset.rs:
crates/data/src/partition.rs:
crates/data/src/stats.rs:
crates/data/src/synth/mod.rs:
crates/data/src/synth/palette.rs:
crates/data/src/synth/shapes.rs:
crates/data/src/synth/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
