/root/repo/target/debug/deps/debug_latency-37db1cd97524a06b.d: crates/bench/src/bin/debug_latency.rs Cargo.toml

/root/repo/target/debug/deps/libdebug_latency-37db1cd97524a06b.rmeta: crates/bench/src/bin/debug_latency.rs Cargo.toml

crates/bench/src/bin/debug_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
