/root/repo/target/debug/deps/proptest-e06773956ee2a572.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-e06773956ee2a572: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
