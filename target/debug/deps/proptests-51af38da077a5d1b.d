/root/repo/target/debug/deps/proptests-51af38da077a5d1b.d: crates/nn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-51af38da077a5d1b.rmeta: crates/nn/tests/proptests.rs Cargo.toml

crates/nn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
