/root/repo/target/debug/deps/proptests-a0304ff39e1f375d.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a0304ff39e1f375d.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
