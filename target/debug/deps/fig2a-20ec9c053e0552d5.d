/root/repo/target/debug/deps/fig2a-20ec9c053e0552d5.d: crates/bench/src/bin/fig2a.rs

/root/repo/target/debug/deps/fig2a-20ec9c053e0552d5: crates/bench/src/bin/fig2a.rs

crates/bench/src/bin/fig2a.rs:
