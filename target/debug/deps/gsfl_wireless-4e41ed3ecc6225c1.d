/root/repo/target/debug/deps/gsfl_wireless-4e41ed3ecc6225c1.d: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs

/root/repo/target/debug/deps/libgsfl_wireless-4e41ed3ecc6225c1.rlib: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs

/root/repo/target/debug/deps/libgsfl_wireless-4e41ed3ecc6225c1.rmeta: crates/wireless/src/lib.rs crates/wireless/src/error.rs crates/wireless/src/allocation.rs crates/wireless/src/device.rs crates/wireless/src/energy.rs crates/wireless/src/fading.rs crates/wireless/src/latency.rs crates/wireless/src/link.rs crates/wireless/src/pathloss.rs crates/wireless/src/server.rs crates/wireless/src/topology.rs crates/wireless/src/units.rs

crates/wireless/src/lib.rs:
crates/wireless/src/error.rs:
crates/wireless/src/allocation.rs:
crates/wireless/src/device.rs:
crates/wireless/src/energy.rs:
crates/wireless/src/fading.rs:
crates/wireless/src/latency.rs:
crates/wireless/src/link.rs:
crates/wireless/src/pathloss.rs:
crates/wireless/src/server.rs:
crates/wireless/src/topology.rs:
crates/wireless/src/units.rs:
