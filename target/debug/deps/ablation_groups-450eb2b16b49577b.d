/root/repo/target/debug/deps/ablation_groups-450eb2b16b49577b.d: crates/bench/src/bin/ablation_groups.rs Cargo.toml

/root/repo/target/debug/deps/libablation_groups-450eb2b16b49577b.rmeta: crates/bench/src/bin/ablation_groups.rs Cargo.toml

crates/bench/src/bin/ablation_groups.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
