/root/repo/target/debug/deps/proptests-eeaa6da1e390ed22.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-eeaa6da1e390ed22: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
