/root/repo/target/debug/deps/gsfl-9299a0f3b68aefe7.d: src/lib.rs

/root/repo/target/debug/deps/gsfl-9299a0f3b68aefe7: src/lib.rs

src/lib.rs:
