/root/repo/target/debug/deps/serde-c26a8b3f2951bc48.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-c26a8b3f2951bc48: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
