/root/repo/target/debug/deps/ablation_groups-8e5e23f66819547e.d: crates/bench/src/bin/ablation_groups.rs

/root/repo/target/debug/deps/ablation_groups-8e5e23f66819547e: crates/bench/src/bin/ablation_groups.rs

crates/bench/src/bin/ablation_groups.rs:
