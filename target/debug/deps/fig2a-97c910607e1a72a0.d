/root/repo/target/debug/deps/fig2a-97c910607e1a72a0.d: crates/bench/src/bin/fig2a.rs Cargo.toml

/root/repo/target/debug/deps/libfig2a-97c910607e1a72a0.rmeta: crates/bench/src/bin/fig2a.rs Cargo.toml

crates/bench/src/bin/fig2a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
