/root/repo/target/debug/deps/ablation_noniid-cab6cf811feb15f2.d: crates/bench/src/bin/ablation_noniid.rs

/root/repo/target/debug/deps/ablation_noniid-cab6cf811feb15f2: crates/bench/src/bin/ablation_noniid.rs

crates/bench/src/bin/ablation_noniid.rs:
