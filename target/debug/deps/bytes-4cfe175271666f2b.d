/root/repo/target/debug/deps/bytes-4cfe175271666f2b.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4cfe175271666f2b.rlib: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-4cfe175271666f2b.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
