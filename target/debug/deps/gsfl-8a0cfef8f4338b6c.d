/root/repo/target/debug/deps/gsfl-8a0cfef8f4338b6c.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl-8a0cfef8f4338b6c.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
