/root/repo/target/debug/deps/gsfl-bc6faa6c3e36c514.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgsfl-bc6faa6c3e36c514.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
