/root/repo/target/debug/deps/gsfl_bench-d413b91e82747bb8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-d413b91e82747bb8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgsfl_bench-d413b91e82747bb8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
