/root/repo/target/debug/deps/energy_table-76b8309294ec9936.d: crates/bench/src/bin/energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_table-76b8309294ec9936.rmeta: crates/bench/src/bin/energy_table.rs Cargo.toml

crates/bench/src/bin/energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
