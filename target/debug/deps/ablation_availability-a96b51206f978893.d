/root/repo/target/debug/deps/ablation_availability-a96b51206f978893.d: crates/bench/src/bin/ablation_availability.rs Cargo.toml

/root/repo/target/debug/deps/libablation_availability-a96b51206f978893.rmeta: crates/bench/src/bin/ablation_availability.rs Cargo.toml

crates/bench/src/bin/ablation_availability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
