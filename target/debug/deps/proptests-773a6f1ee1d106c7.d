/root/repo/target/debug/deps/proptests-773a6f1ee1d106c7.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-773a6f1ee1d106c7.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
