/root/repo/target/debug/deps/storage_table-cf83e183e3646b36.d: crates/bench/src/bin/storage_table.rs

/root/repo/target/debug/deps/storage_table-cf83e183e3646b36: crates/bench/src/bin/storage_table.rs

crates/bench/src/bin/storage_table.rs:
