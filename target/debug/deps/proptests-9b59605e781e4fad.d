/root/repo/target/debug/deps/proptests-9b59605e781e4fad.d: crates/wireless/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9b59605e781e4fad: crates/wireless/tests/proptests.rs

crates/wireless/tests/proptests.rs:
