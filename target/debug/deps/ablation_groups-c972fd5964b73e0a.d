/root/repo/target/debug/deps/ablation_groups-c972fd5964b73e0a.d: crates/bench/src/bin/ablation_groups.rs

/root/repo/target/debug/deps/ablation_groups-c972fd5964b73e0a: crates/bench/src/bin/ablation_groups.rs

crates/bench/src/bin/ablation_groups.rs:
