/root/repo/target/debug/deps/bytes-91f0fc6f4d54d4c9.d: vendor/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-91f0fc6f4d54d4c9.rmeta: vendor/bytes/src/lib.rs Cargo.toml

vendor/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
