/root/repo/target/debug/deps/fig2b-013a6aba0d72772c.d: crates/bench/src/bin/fig2b.rs

/root/repo/target/debug/deps/fig2b-013a6aba0d72772c: crates/bench/src/bin/fig2b.rs

crates/bench/src/bin/fig2b.rs:
