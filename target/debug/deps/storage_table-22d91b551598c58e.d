/root/repo/target/debug/deps/storage_table-22d91b551598c58e.d: crates/bench/src/bin/storage_table.rs Cargo.toml

/root/repo/target/debug/deps/libstorage_table-22d91b551598c58e.rmeta: crates/bench/src/bin/storage_table.rs Cargo.toml

crates/bench/src/bin/storage_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
