/root/repo/target/debug/deps/ablation_availability-e1522d11fac9c7ae.d: crates/bench/src/bin/ablation_availability.rs

/root/repo/target/debug/deps/ablation_availability-e1522d11fac9c7ae: crates/bench/src/bin/ablation_availability.rs

crates/bench/src/bin/ablation_availability.rs:
