/root/repo/target/debug/deps/latency_ordering-168633b9a7959fcf.d: tests/latency_ordering.rs

/root/repo/target/debug/deps/latency_ordering-168633b9a7959fcf: tests/latency_ordering.rs

tests/latency_ordering.rs:
