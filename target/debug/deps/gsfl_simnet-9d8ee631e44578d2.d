/root/repo/target/debug/deps/gsfl_simnet-9d8ee631e44578d2.d: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

/root/repo/target/debug/deps/gsfl_simnet-9d8ee631e44578d2: crates/simnet/src/lib.rs crates/simnet/src/error.rs crates/simnet/src/graph.rs crates/simnet/src/sim.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs

crates/simnet/src/lib.rs:
crates/simnet/src/error.rs:
crates/simnet/src/graph.rs:
crates/simnet/src/sim.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
