/root/repo/target/debug/deps/serde-12dc029392915d26.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-12dc029392915d26.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-12dc029392915d26.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
