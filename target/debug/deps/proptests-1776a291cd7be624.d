/root/repo/target/debug/deps/proptests-1776a291cd7be624.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1776a291cd7be624: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
