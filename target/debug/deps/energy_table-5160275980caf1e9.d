/root/repo/target/debug/deps/energy_table-5160275980caf1e9.d: crates/bench/src/bin/energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_table-5160275980caf1e9.rmeta: crates/bench/src/bin/energy_table.rs Cargo.toml

crates/bench/src/bin/energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
