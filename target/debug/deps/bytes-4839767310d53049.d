/root/repo/target/debug/deps/bytes-4839767310d53049.d: vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-4839767310d53049: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
