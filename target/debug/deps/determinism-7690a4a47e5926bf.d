/root/repo/target/debug/deps/determinism-7690a4a47e5926bf.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-7690a4a47e5926bf: tests/determinism.rs

tests/determinism.rs:
