/root/repo/target/debug/deps/session_api-f8214ae55beab529.d: tests/session_api.rs

/root/repo/target/debug/deps/session_api-f8214ae55beab529: tests/session_api.rs

tests/session_api.rs:
