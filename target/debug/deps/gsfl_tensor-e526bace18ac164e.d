/root/repo/target/debug/deps/gsfl_tensor-e526bace18ac164e.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libgsfl_tensor-e526bace18ac164e.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

/root/repo/target/debug/deps/libgsfl_tensor-e526bace18ac164e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs crates/tensor/src/conv.rs crates/tensor/src/init.rs crates/tensor/src/io.rs crates/tensor/src/matmul.rs crates/tensor/src/pool.rs crates/tensor/src/rng.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
crates/tensor/src/conv.rs:
crates/tensor/src/init.rs:
crates/tensor/src/io.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/rng.rs:
