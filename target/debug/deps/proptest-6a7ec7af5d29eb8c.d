/root/repo/target/debug/deps/proptest-6a7ec7af5d29eb8c.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-6a7ec7af5d29eb8c.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
