/root/repo/target/debug/examples/wireless_latency-281ca695544eb074.d: examples/wireless_latency.rs

/root/repo/target/debug/examples/wireless_latency-281ca695544eb074: examples/wireless_latency.rs

examples/wireless_latency.rs:
