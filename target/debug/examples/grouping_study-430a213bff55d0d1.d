/root/repo/target/debug/examples/grouping_study-430a213bff55d0d1.d: examples/grouping_study.rs

/root/repo/target/debug/examples/grouping_study-430a213bff55d0d1: examples/grouping_study.rs

examples/grouping_study.rs:
