/root/repo/target/debug/examples/grouping_study-76e7574137e02b4c.d: examples/grouping_study.rs Cargo.toml

/root/repo/target/debug/examples/libgrouping_study-76e7574137e02b4c.rmeta: examples/grouping_study.rs Cargo.toml

examples/grouping_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
