/root/repo/target/debug/examples/cut_layer_study-6435258b434e76ec.d: examples/cut_layer_study.rs Cargo.toml

/root/repo/target/debug/examples/libcut_layer_study-6435258b434e76ec.rmeta: examples/cut_layer_study.rs Cargo.toml

examples/cut_layer_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
