/root/repo/target/debug/examples/cut_layer_study-e469aba0e51bea62.d: examples/cut_layer_study.rs

/root/repo/target/debug/examples/cut_layer_study-e469aba0e51bea62: examples/cut_layer_study.rs

examples/cut_layer_study.rs:
