/root/repo/target/debug/examples/wireless_latency-15c85b2227d84c0f.d: examples/wireless_latency.rs Cargo.toml

/root/repo/target/debug/examples/libwireless_latency-15c85b2227d84c0f.rmeta: examples/wireless_latency.rs Cargo.toml

examples/wireless_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
