/root/repo/target/debug/examples/quickstart-e7b81cd992dcbd84.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e7b81cd992dcbd84: examples/quickstart.rs

examples/quickstart.rs:
