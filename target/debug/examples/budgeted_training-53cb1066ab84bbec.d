/root/repo/target/debug/examples/budgeted_training-53cb1066ab84bbec.d: examples/budgeted_training.rs

/root/repo/target/debug/examples/budgeted_training-53cb1066ab84bbec: examples/budgeted_training.rs

examples/budgeted_training.rs:
