/root/repo/target/debug/examples/traffic_signs-0331d1c47e025078.d: examples/traffic_signs.rs

/root/repo/target/debug/examples/traffic_signs-0331d1c47e025078: examples/traffic_signs.rs

examples/traffic_signs.rs:
