/root/repo/target/debug/examples/traffic_signs-acfd3586f2c1a0f3.d: examples/traffic_signs.rs Cargo.toml

/root/repo/target/debug/examples/libtraffic_signs-acfd3586f2c1a0f3.rmeta: examples/traffic_signs.rs Cargo.toml

examples/traffic_signs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
