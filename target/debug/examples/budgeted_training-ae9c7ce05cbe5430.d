/root/repo/target/debug/examples/budgeted_training-ae9c7ce05cbe5430.d: examples/budgeted_training.rs Cargo.toml

/root/repo/target/debug/examples/libbudgeted_training-ae9c7ce05cbe5430.rmeta: examples/budgeted_training.rs Cargo.toml

examples/budgeted_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
