//! Integration tests for the session-based scheme API: stream/one-shot
//! equivalence, pluggable stop policies, and the scheme registry.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::runner::{RoundEvent, Runner, Session};
use gsfl::core::scheme::{SchemeKind, SchemeRegistry};
use gsfl::core::stop::{CompositePolicy, LatencyBudget, LossPlateau, RoundBudget, StopReason};

fn config(rounds: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(rounds)
        .batch_size(4)
        .eval_every(2)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 10,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .seed(11)
        .build()
        .unwrap()
}

/// `Runner::run` (a drain of the session iterator) and a manual
/// event-by-event drain must produce byte-identical results for every
/// scheme.
#[test]
fn session_stream_equals_one_shot_for_every_scheme() {
    let runner = Runner::new(config(4)).unwrap();
    for kind in SchemeKind::all() {
        let one_shot = runner.run(kind).unwrap();

        let mut session = runner.session(kind).unwrap();
        let mut streamed_records = Vec::new();
        for event in &mut session {
            if let RoundEvent::RoundFinished { record, .. } = event.unwrap() {
                streamed_records.push(record);
            }
        }
        let streamed = session.finish();

        assert_eq!(one_shot.scheme, streamed.scheme, "{kind}");
        assert_eq!(one_shot.records.len(), streamed.records.len(), "{kind}");
        for (a, b) in one_shot.records.iter().zip(&streamed.records) {
            assert_eq!(a, b, "{kind}: records must be identical");
        }
        assert_eq!(
            one_shot.records, streamed_records,
            "{kind}: events must carry the records"
        );
        assert_eq!(
            one_shot.server_storage_bytes, streamed.server_storage_bytes,
            "{kind}"
        );
        assert_eq!(one_shot.param_count, streamed.param_count, "{kind}");
    }
}

/// The event stream has the documented shape: every round yields
/// `RoundStarted` before `RoundFinished`, eval rounds yield `Evaluated`,
/// and the stream ends with `Stopped`.
#[test]
fn event_stream_shape_is_consistent() {
    let runner = Runner::new(config(4)).unwrap();
    let session = runner.session(SchemeKind::Federated).unwrap();
    let events: Vec<RoundEvent> = session.map(|e| e.unwrap()).collect();

    let mut started = 0;
    let mut finished = 0;
    let mut evaluated = 0;
    let mut current: Option<usize> = None;
    for event in &events {
        match event {
            RoundEvent::RoundStarted { round } => {
                assert_eq!(current, None, "round {round} started before previous ended");
                current = Some(*round);
                started += 1;
            }
            RoundEvent::RoundFinished { round, record } => {
                assert_eq!(current, Some(*round));
                assert_eq!(record.round, *round);
                current = None;
                finished += 1;
            }
            RoundEvent::Evaluated { round, accuracy } => {
                assert_eq!(current, Some(*round));
                assert!((0.0..=1.0).contains(accuracy));
                evaluated += 1;
            }
            RoundEvent::Aggregated { round } => assert_eq!(current, Some(*round)),
            RoundEvent::Stopped { .. } => {}
        }
    }
    assert_eq!(started, 4);
    assert_eq!(finished, 4);
    // eval_every=2 with rounds 1 and 4 forced: rounds 1, 2, 4.
    assert_eq!(evaluated, 3);
    assert!(matches!(
        events.last(),
        Some(RoundEvent::Stopped {
            reason: StopReason::RoundBudget { rounds: 4 },
            ..
        })
    ));
}

/// A latency budget halts a run mid-way through its round budget.
#[test]
fn latency_budget_halts_mid_run() {
    let runner = Runner::new(config(6)).unwrap();
    let reference = runner.run(SchemeKind::Gsfl).unwrap();
    assert_eq!(reference.records.len(), 6);
    // Budget for roughly half the total simulated time.
    let budget = reference.total_latency_s() / 2.0;

    let session = runner
        .session_with_policy(SchemeKind::Gsfl, Box::new(LatencyBudget::new(budget)))
        .unwrap();
    let result = session.run_to_end().unwrap();
    assert!(
        result.records.len() < reference.records.len(),
        "latency budget must truncate: {} vs {}",
        result.records.len(),
        reference.records.len()
    );
    // The truncated prefix must be identical to the reference run.
    for (a, b) in result.records.iter().zip(&reference.records) {
        assert_eq!(a, b, "prefix must match the unbudgeted run");
    }
}

/// Plateau detection stops a run whose loss stops improving; with a huge
/// `min_delta` every round counts as stalled, so it stops at `patience`.
#[test]
fn loss_plateau_detection_stops_early() {
    let runner = Runner::new(config(6)).unwrap();
    let session = runner
        .session_with_policy(
            SchemeKind::Centralized,
            Box::new(LossPlateau::new(2, f64::INFINITY)),
        )
        .unwrap();
    let result = session.run_to_end().unwrap();
    assert_eq!(
        result.records.len(),
        2,
        "plateau must stop after patience rounds"
    );
}

/// Policies compose: the earliest trip wins.
#[test]
fn composite_policy_takes_first_trip() {
    let runner = Runner::new(config(6)).unwrap();
    let policy = CompositePolicy::new()
        .with(Box::new(RoundBudget::new(3)))
        .with(Box::new(LatencyBudget::new(f64::INFINITY)));
    let mut session = runner
        .session_with_policy(SchemeKind::VanillaSplit, Box::new(policy))
        .unwrap();
    let mut stop = None;
    for event in &mut session {
        if let RoundEvent::Stopped { reason, .. } = event.unwrap() {
            stop = Some(reason);
        }
    }
    assert!(matches!(stop, Some(StopReason::RoundBudget { rounds: 3 })));
    assert_eq!(session.finish().records.len(), 3);
}

/// Registry round-trip: every builtin name constructs a scheme whose
/// kind maps back to the same name, and registry-built schemes run
/// identically to kind-built ones.
#[test]
fn registry_round_trips_and_runs() {
    let registry = SchemeRegistry::builtin();
    assert_eq!(registry.names(), vec!["cl", "sl", "gsfl", "fl", "sfl"]);

    let runner = Runner::new(config(2)).unwrap();
    for name in registry.names() {
        let scheme = registry.create(name).expect("builtin scheme");
        assert_eq!(scheme.kind().name(), name);
        assert_eq!(SchemeKind::from_name(name), Some(scheme.kind()));

        let via_registry = runner
            .session_scheme(
                registry.create(name).unwrap(),
                Box::new(RoundBudget::new(usize::MAX)),
            )
            .unwrap()
            .run_to_end()
            .unwrap();
        let via_kind = runner.run(SchemeKind::from_name(name).unwrap()).unwrap();
        assert_eq!(via_registry.records, via_kind.records, "{name}");
    }
}

/// A session can be driven directly from a context (without a Runner),
/// which is what `SchemeKind::run` does.
#[test]
fn kind_run_matches_session_over_context() {
    let runner = Runner::new(config(2)).unwrap();
    let via_kind = SchemeKind::Gsfl.run(runner.context()).unwrap();
    let via_session = Session::over(runner.context(), SchemeKind::Gsfl)
        .unwrap()
        .run_to_end()
        .unwrap();
    assert_eq!(via_kind.records, via_session.records);
}

/// Aborting a session mid-run keeps the partial prefix.
#[test]
fn mid_run_abort_preserves_prefix() {
    let runner = Runner::new(config(5)).unwrap();
    let reference = runner.run(SchemeKind::SplitFed).unwrap();

    let mut session = runner.session(SchemeKind::SplitFed).unwrap();
    let mut seen = 0;
    for event in &mut session {
        if matches!(event.unwrap(), RoundEvent::RoundFinished { .. }) {
            seen += 1;
            if seen == 2 {
                break;
            }
        }
    }
    let partial = session.finish();
    assert_eq!(partial.records.len(), 2);
    for (a, b) in partial.records.iter().zip(&reference.records) {
        assert_eq!(a, b, "aborted prefix must match the full run");
    }
}

/// `run_many` runs schemes on parallel threads but must preserve both
/// order and per-scheme determinism.
#[test]
fn run_many_is_deterministic_and_ordered() {
    let runner = Runner::new(config(3)).unwrap();
    let kinds = SchemeKind::all();
    let many = runner.run_many(&kinds).unwrap();
    assert_eq!(many.len(), kinds.len());
    for (kind, result) in kinds.iter().zip(&many) {
        assert_eq!(result.scheme, kind.name());
        let solo = runner.run(*kind).unwrap();
        assert_eq!(solo.records, result.records, "{kind}");
    }
}
