//! Failure injection: client churn via per-round availability.
//!
//! With `availability < 1` every scheme must keep training (skipping the
//! unreachable clients), keep its latency accounting consistent (fewer
//! participants ⇒ cheaper rounds), and stay deterministic.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

fn config(availability: f64, rounds: usize) -> ExperimentConfig {
    let base = gsfl::data::synth::Augment::default();
    let mild = gsfl::data::synth::Augment {
        rotation: base.rotation * 0.5,
        translation: base.translation * 0.5,
        scale_jitter: base.scale_jitter * 0.5,
        brightness: base.brightness * 0.5,
        noise_std: base.noise_std * 0.5,
        background_jitter: base.background_jitter,
    };
    ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(rounds)
        .batch_size(8)
        .learning_rate(0.1)
        .eval_every(rounds.max(1))
        .augment(mild)
        .availability(availability)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 20,
            test_per_class: 8,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![24] })
        .seed(31)
        .build()
        .unwrap()
}

#[test]
fn full_availability_matches_default_semantics() {
    // availability = 1.0 must reproduce the baseline exactly.
    let base = Runner::new(config(1.0, 3)).unwrap();
    for kind in SchemeKind::all() {
        let a = base.run(kind).unwrap();
        let b = base.run(kind).unwrap();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits(), "{kind}");
        }
    }
}

#[test]
fn availability_is_rejected_outside_unit_interval() {
    assert!(ExperimentConfig::builder()
        .availability(0.0)
        .build()
        .is_err());
    assert!(ExperimentConfig::builder()
        .availability(1.5)
        .build()
        .is_err());
    assert!(ExperimentConfig::builder()
        .availability(0.5)
        .build()
        .is_ok());
}

#[test]
fn every_scheme_survives_churn_and_learns() {
    // Per-round participation is a biased subsample, so accuracy
    // oscillates; the best evaluation over the horizon must still be well
    // above the 25 % chance level.
    let mut cfg = config(0.6, 20);
    cfg.eval_every = 2;
    let runner = Runner::new(cfg).unwrap();
    for kind in [
        SchemeKind::VanillaSplit,
        SchemeKind::Gsfl,
        SchemeKind::Federated,
        SchemeKind::SplitFed,
    ] {
        let r = runner.run(kind).unwrap();
        assert_eq!(r.records.len(), 20, "{kind} must run all rounds");
        assert!(
            r.best_accuracy_pct() > 45.0,
            "{kind} stuck at best {:.1}% under churn",
            r.best_accuracy_pct()
        );
    }
}

#[test]
fn churn_reduces_round_cost() {
    // Fewer participants per round ⇒ fewer bytes and (for the sequential
    // scheme) less time, summed over a horizon.
    let full = Runner::new(config(1.0, 6))
        .unwrap()
        .run(SchemeKind::VanillaSplit)
        .unwrap();
    let churny = Runner::new(config(0.5, 6))
        .unwrap()
        .run(SchemeKind::VanillaSplit)
        .unwrap();
    assert!(churny.total_bytes() < full.total_bytes());
    assert!(churny.total_latency_s() < full.total_latency_s());
    assert!(churny.total_client_energy_j() < full.total_client_energy_j());
}

#[test]
fn churn_is_deterministic_and_seed_sensitive() {
    let a = Runner::new(config(0.5, 5))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    let b = Runner::new(config(0.5, 5))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits());
        assert_eq!(ra.bytes_up, rb.bytes_up);
    }
    // A different seed draws different availability patterns.
    let mut other_cfg = config(0.5, 5);
    other_cfg.seed = 32;
    let c = Runner::new(other_cfg)
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    let differs = a
        .records
        .iter()
        .zip(&c.records)
        .any(|(x, y)| x.bytes_up != y.bytes_up || x.train_loss != y.train_loss);
    assert!(differs);
}

#[test]
fn extreme_churn_never_empties_a_round() {
    // At 1% availability the fallback guarantees one participant per
    // round; the run must complete with non-zero latency each round.
    let runner = Runner::new(config(0.01, 4)).unwrap();
    let r = runner.run(SchemeKind::VanillaSplit).unwrap();
    assert_eq!(r.records.len(), 4);
    for rec in &r.records {
        assert!(rec.round_latency_s > 0.0);
    }
}
