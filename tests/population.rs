//! End-to-end population mode: every scheme trains a cohort sampled from
//! a sparse population far larger than anything materialized, the runs
//! are deterministic, and the hierarchical preset charges backhaul time
//! that the backhaul-free topology does not.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::population::PopulationConfig;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::Scenario;

fn population_config(configured: u64, scenario: Scenario) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(3)
        .batch_size(4)
        .eval_every(3)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .population(PopulationConfig {
            clients: configured,
            samples_per_client: 0,
        })
        .scenario(scenario)
        .seed(13)
        .build()
        .unwrap()
}

#[test]
fn every_scheme_trains_a_cohort_from_a_large_population() {
    let runner = Runner::new(population_config(2_000_000, Scenario::Static)).unwrap();
    for kind in SchemeKind::all() {
        let result = runner.run(kind).unwrap();
        assert_eq!(result.records.len(), 3, "{kind:?} must run every round");
        assert!(
            result.records.iter().all(|r| r.train_loss.is_finite()),
            "{kind:?} produced a non-finite loss"
        );
    }
}

#[test]
fn population_runs_are_deterministic() {
    let a = Runner::new(population_config(500_000, Scenario::Static))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    let b = Runner::new(population_config(500_000, Scenario::Static))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    assert_eq!(
        serde_json::to_string(&a.records).unwrap(),
        serde_json::to_string(&b.records).unwrap(),
        "population mode must be bit-deterministic per seed"
    );
}

#[test]
fn hierarchical_backhaul_slows_population_rounds() {
    let flat = Runner::new(population_config(
        100_000,
        Scenario::preset("multi_ap").unwrap(),
    ))
    .unwrap()
    .run(SchemeKind::Gsfl)
    .unwrap();
    let tiered = Runner::new(population_config(
        100_000,
        Scenario::preset("hierarchical").unwrap(),
    ))
    .unwrap()
    .run(SchemeKind::Gsfl)
    .unwrap();
    assert!(
        tiered.total_latency_s() > flat.total_latency_s(),
        "a priced backhaul tier must add latency: {} vs {}",
        tiered.total_latency_s(),
        flat.total_latency_s()
    );
    // The training math is identical — only transport cost differs.
    assert_eq!(
        flat.records
            .iter()
            .map(|r| r.train_loss.to_bits())
            .collect::<Vec<u64>>(),
        tiered
            .records
            .iter()
            .map(|r| r.train_loss.to_bits())
            .collect::<Vec<u64>>(),
        "backhaul pricing must not perturb training"
    );
}
