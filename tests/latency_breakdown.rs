//! Regression tests for per-phase latency attribution.
//!
//! The bug class under guard: when concurrent groups contend for edge
//! server slots (one AP or several), the time a server task spends
//! *queued* must be charged to server compute time — not smeared into
//! uplink time, where it would misdiagnose a congested AP as a slow
//! radio. `LatencyBreakdown.uplink_s` therefore has to be invariant to
//! server slot count, while `server_s` absorbs the queueing delta.

use gsfl::core::latency::{gsfl_round, sl_round, ChannelMode, SplitCosts};
use gsfl::nn::model::Mlp;
use gsfl::wireless::allocation::BandwidthPolicy;
use gsfl::wireless::device::DeviceProfile;
use gsfl::wireless::environment::{ChannelModel, StaticEnvironment};
use gsfl::wireless::latency::LatencyModel;
use gsfl::wireless::multi_ap::{AccessPoint, MultiApEnvironment};
use gsfl::wireless::server::EdgeServer;
use gsfl::wireless::units::{FlopsRate, Meters};

fn model(slots: usize, clients: usize) -> LatencyModel {
    LatencyModel::builder()
        .clients(clients)
        .fading(false)
        .fixed_distances(vec![Meters::new(50.0); clients])
        .fixed_devices(vec![
            DeviceProfile::new(FlopsRate::from_gflops(1.0)).unwrap();
            clients
        ])
        .server(EdgeServer::new(FlopsRate::from_gflops(50.0), slots).unwrap())
        .build()
        .unwrap()
}

fn costs() -> SplitCosts {
    let net = Mlp::new(48, &[32, 32], 5, 0).into_sequential();
    SplitCosts::compute(&net, 2, &[48], 8).unwrap()
}

#[test]
fn server_contention_lands_in_server_time_not_uplink_time() {
    let costs = costs();
    let steps = vec![2usize; 6];
    let groups: Vec<Vec<usize>> = (0..6).map(|c| vec![c]).collect();
    let run = |slots: usize| {
        gsfl_round(
            &StaticEnvironment::new(model(slots, 6)),
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap()
    };
    let wide = run(8); // no contention: every group gets a slot
    let narrow = run(1); // full contention: one slot serves six groups
    assert!(
        narrow.duration.as_secs_f64() > wide.duration.as_secs_f64(),
        "contention must slow the round"
    );
    // Attribution: the radio did not get slower — uplink/downlink and
    // client compute are identical; the entire delta is server time.
    assert_eq!(wide.breakdown.uplink_s, narrow.breakdown.uplink_s);
    assert_eq!(wide.breakdown.downlink_s, narrow.breakdown.downlink_s);
    assert_eq!(
        wide.breakdown.client_compute_s,
        narrow.breakdown.client_compute_s
    );
    assert!(
        narrow.breakdown.server_s > wide.breakdown.server_s,
        "queueing must be charged to the server phase: narrow {} vs wide {}",
        narrow.breakdown.server_s,
        wide.breakdown.server_s
    );
}

#[test]
fn uncontended_breakdown_has_no_queue_wait() {
    // With ample slots, server_s is exactly the nominal compute time of
    // every server task (12 split steps + fedavg).
    let costs = costs();
    let env = StaticEnvironment::new(model(8, 4));
    let steps = vec![3usize; 4];
    let groups: Vec<Vec<usize>> = (0..4).map(|c| vec![c]).collect();
    let r = gsfl_round(
        &env,
        &costs,
        &steps,
        &groups,
        BandwidthPolicy::Equal,
        ChannelMode::Dedicated,
        0,
    )
    .unwrap();
    let per_task = env.server_compute(costs.server_flops).as_secs_f64();
    let nominal = 12.0 * per_task; // + fedavg, checked as a lower bound
    assert!(r.breakdown.server_s >= nominal - 1e-12);
    assert!(
        r.breakdown.server_s < nominal * 1.2,
        "no contention ⇒ no queueing: {} vs nominal {}",
        r.breakdown.server_s,
        nominal
    );
}

#[test]
fn sequential_round_breakdown_sums_to_duration() {
    // SL is strictly sequential, so the wall clock is exactly the sum of
    // the phases — the breakdown must account for every second.
    let costs = costs();
    let env = StaticEnvironment::new(model(4, 3));
    let steps = vec![2usize; 3];
    let r = sl_round(&env, &costs, &steps, &[0, 1, 2], ChannelMode::Dedicated, 0).unwrap();
    let total = r.breakdown.total_s();
    assert!(
        (total - r.duration.as_secs_f64()).abs() < 1e-9,
        "breakdown {total} != duration {}",
        r.duration.as_secs_f64()
    );
    assert!(r.breakdown.uplink_s > 0.0);
    assert!(r.breakdown.downlink_s > 0.0);
    assert!(r.breakdown.client_compute_s > 0.0);
    assert!(r.breakdown.server_s > 0.0);
}

#[test]
fn per_ap_contention_is_attributed_per_ap() {
    // Two APs: AP0 ample, AP1 single-slot. Clients split by bearing; the
    // round must still run, and starving AP1 must show up as server
    // time, never as uplink time.
    let base = model(8, 6);
    let fast = EdgeServer::new(FlopsRate::from_gflops(50.0), 8).unwrap();
    let slow = EdgeServer::new(FlopsRate::from_gflops(50.0), 1).unwrap();
    let build = |second_server: EdgeServer| {
        MultiApEnvironment::builder(base.clone())
            .aps(vec![
                AccessPoint {
                    x_m: 0.0,
                    y_m: 0.0,
                    server: fast,
                },
                AccessPoint {
                    x_m: 60.0,
                    y_m: 0.0,
                    server: second_server,
                },
            ])
            .unwrap()
            .seed(3)
            .build()
            .unwrap()
    };
    let roomy = build(fast);
    let tight = build(slow);
    let costs = costs();
    let steps = vec![2usize; 6];
    let groups: Vec<Vec<usize>> = (0..6).map(|c| vec![c]).collect();
    let run = |env: &MultiApEnvironment| {
        gsfl_round(
            env,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap()
    };
    // Both environments agree on geometry/associations (same seed), so
    // radio phases match exactly; only AP1's slot count differs.
    let a = run(&roomy);
    let b = run(&tight);
    assert_eq!(a.breakdown.uplink_s, b.breakdown.uplink_s);
    assert_eq!(a.breakdown.downlink_s, b.breakdown.downlink_s);
    // Whether the tight AP actually queues depends on how many clients
    // associated with it; it can only ever add server time.
    assert!(b.breakdown.server_s >= a.breakdown.server_s);
    assert!(b.duration.as_secs_f64() >= a.duration.as_secs_f64());
}
