//! Latency properties across schemes: the orderings the paper's Fig. 2(b)
//! and the DES contention model must satisfy, plus DES-vs-closed-form
//! cross-checks.

use gsfl::core::latency::{gsfl_round, sl_round, ChannelMode, SplitCosts};
use gsfl::nn::model::Mlp;
use gsfl::wireless::allocation::BandwidthPolicy;
use gsfl::wireless::device::DeviceProfile;
use gsfl::wireless::environment::StaticEnvironment;
use gsfl::wireless::latency::LatencyModel;
use gsfl::wireless::server::EdgeServer;
use gsfl::wireless::units::{FlopsRate, Meters};

fn homogeneous_model(clients: usize, slots: usize) -> StaticEnvironment {
    StaticEnvironment::new(
        LatencyModel::builder()
            .clients(clients)
            .fading(false)
            .fixed_distances(vec![Meters::new(60.0); clients])
            .fixed_devices(vec![
                DeviceProfile::new(FlopsRate::from_gflops(0.5)).unwrap();
                clients
            ])
            .server(EdgeServer::new(FlopsRate::from_gflops(50.0), slots).unwrap())
            .build()
            .unwrap(),
    )
}

fn costs() -> SplitCosts {
    let net = Mlp::new(192, &[64, 32], 10, 0).into_sequential();
    SplitCosts::compute(&net, 2, &[192], 8).unwrap()
}

#[test]
fn gsfl_round_beats_sl_round_with_groups() {
    let latency = homogeneous_model(12, 6);
    let costs = costs();
    let steps = vec![3usize; 12];
    let order: Vec<usize> = (0..12).collect();
    let sl = sl_round(&latency, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
    for m in [2usize, 3, 4, 6] {
        let groups: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..12).filter(|c| c % m == g).collect())
            .collect();
        let r = gsfl_round(
            &latency,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        assert!(
            r.duration.as_secs_f64() < sl.duration.as_secs_f64(),
            "M={m}: gsfl {:.3}s !< sl {:.3}s",
            r.duration.as_secs_f64(),
            sl.duration.as_secs_f64()
        );
    }
}

#[test]
fn more_groups_never_slower_under_dedicated_channels() {
    let latency = homogeneous_model(12, 12); // ample server slots
    let costs = costs();
    let steps = vec![3usize; 12];
    let mut last = f64::INFINITY;
    for m in [1usize, 2, 3, 4, 6, 12] {
        let groups: Vec<Vec<usize>> = (0..m)
            .map(|g| (0..12).filter(|c| c % m == g).collect())
            .collect();
        let r = gsfl_round(
            &latency,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let t = r.duration.as_secs_f64();
        assert!(
            t <= last * 1.05,
            "M={m} slower than fewer groups: {t} vs {last}"
        );
        last = t;
    }
}

#[test]
fn des_matches_closed_form_for_single_group_without_contention() {
    // One group, ample server slots ⇒ the DES chain is exactly the SL
    // closed form plus the aggregation tail.
    let latency = homogeneous_model(4, 8);
    let costs = costs();
    let steps = vec![2usize; 4];
    let order: Vec<usize> = (0..4).collect();
    let sl = sl_round(&latency, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
    let gsfl = gsfl_round(
        &latency,
        &costs,
        &steps,
        &[order],
        BandwidthPolicy::Equal,
        ChannelMode::Dedicated,
        0,
    )
    .unwrap();
    let diff = gsfl.duration.as_secs_f64() - sl.duration.as_secs_f64();
    assert!(diff >= -1e-9, "DES cannot be faster than the closed form");
    // Aggregation tail: fedavg compute + no extra transmissions beyond
    // those the closed form already counts.
    assert!(
        diff < 0.05 * sl.duration.as_secs_f64(),
        "aggregation tail too large: {diff}s on {}s",
        sl.duration.as_secs_f64()
    );
}

#[test]
fn server_slot_contention_monotonicity() {
    let costs = costs();
    let steps = vec![3usize; 12];
    let groups: Vec<Vec<usize>> = (0..6)
        .map(|g| (0..12).filter(|c| c % 6 == g).collect())
        .collect();
    let mut last = f64::INFINITY;
    for slots in [1usize, 2, 4, 8] {
        let latency = homogeneous_model(12, slots);
        let r = gsfl_round(
            &latency,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            ChannelMode::Dedicated,
            0,
        )
        .unwrap();
        let t = r.duration.as_secs_f64();
        assert!(t <= last + 1e-9, "slots={slots}: {t} > {last}");
        last = t;
    }
}

#[test]
fn shared_pool_helps_sl_hurts_gsfl_relatively() {
    // Under the shared pool, SL's lone transmitter gets the whole band, so
    // SL speeds up; GSFL's groups split it, so the GSFL/SL advantage must
    // shrink versus dedicated subchannels.
    let latency = homogeneous_model(12, 6);
    let costs = costs();
    let steps = vec![3usize; 12];
    let order: Vec<usize> = (0..12).collect();
    let groups: Vec<Vec<usize>> = (0..6)
        .map(|g| (0..12).filter(|c| c % 6 == g).collect())
        .collect();
    let speedup = |mode: ChannelMode| {
        let sl = sl_round(&latency, &costs, &steps, &order, mode, 0).unwrap();
        let g = gsfl_round(
            &latency,
            &costs,
            &steps,
            &groups,
            BandwidthPolicy::Equal,
            mode,
            0,
        )
        .unwrap();
        sl.duration.as_secs_f64() / g.duration.as_secs_f64()
    };
    let dedicated = speedup(ChannelMode::Dedicated);
    let shared = speedup(ChannelMode::SharedPool);
    assert!(
        dedicated > shared,
        "dedicated speedup {dedicated:.2} must exceed shared {shared:.2}"
    );
}

#[test]
fn byte_accounting_independent_of_channel_mode() {
    let latency = homogeneous_model(6, 4);
    let costs = costs();
    let steps = vec![2usize; 6];
    let order: Vec<usize> = (0..6).collect();
    let a = sl_round(&latency, &costs, &steps, &order, ChannelMode::Dedicated, 0).unwrap();
    let b = sl_round(&latency, &costs, &steps, &order, ChannelMode::SharedPool, 0).unwrap();
    assert_eq!(a.bytes, b.bytes);
    assert!(
        a.duration > b.duration,
        "dedicated B/N must be slower for SL"
    );
}
