//! Adaptive cut selection, end to end: the policies run through the full
//! session stack, stay deterministic, and in a contested environment the
//! condition-aware policies never lose to the worst fixed cut.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::cut::CutPolicySpec;
use gsfl::core::results::RunResult;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::AdaptiveCutSpec;
use gsfl::wireless::Scenario;

fn config(cut_index: Option<usize>, policy: CutPolicySpec) -> ExperimentConfig {
    let mut b = ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(6)
        .batch_size(4)
        .eval_every(3)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 3,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp {
            hidden: vec![16, 16],
        })
        .scenario(Scenario::AdaptiveCut(AdaptiveCutSpec::default()))
        .cut_policy(policy)
        .seed(9);
    if let Some(cut) = cut_index {
        b = b.cut_index(cut);
    }
    b.build().unwrap()
}

fn run(cut_index: Option<usize>, policy: CutPolicySpec) -> RunResult {
    Runner::new(config(cut_index, policy))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap()
}

#[test]
fn adaptive_policies_never_lose_to_the_worst_fixed_cut() {
    // MLP [16,16] depth 5 ⇒ cuts 1..=4.
    let fixed: Vec<f64> = (1..5)
        .map(|cut| run(Some(cut), CutPolicySpec::Fixed).total_latency_s())
        .collect();
    let worst = fixed.iter().cloned().fold(0.0, f64::max);
    let best = fixed.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(worst > best, "cuts must actually differ in latency");

    let greedy = run(None, CutPolicySpec::Greedy).total_latency_s();
    let bandit = run(None, CutPolicySpec::Bandit { epsilon: 0.2 }).total_latency_s();
    assert!(
        greedy < worst,
        "greedy ({greedy:.1}s) must beat the worst fixed cut ({worst:.1}s)"
    );
    assert!(
        bandit < worst,
        "bandit ({bandit:.1}s) must beat the worst fixed cut ({worst:.1}s)"
    );
}

#[test]
fn bandit_state_never_leaks_across_runs_of_one_runner() {
    // The policy instance lives in per-run scheme state, so a second
    // run on the same Runner must reproduce the first byte for byte —
    // no warm-started exploration — and parallel run_many must match
    // sequential runs.
    let runner = Runner::new(config(None, CutPolicySpec::Bandit { epsilon: 0.3 })).unwrap();
    let a = runner.run(SchemeKind::Gsfl).unwrap();
    let b = runner.run(SchemeKind::Gsfl).unwrap();
    assert_eq!(a.records, b.records, "second run must not be warm-started");

    let kinds = [SchemeKind::Gsfl, SchemeKind::SplitFed];
    let many = runner.run_many(&kinds).unwrap();
    let sequential: Vec<_> = kinds.iter().map(|&k| runner.run(k).unwrap()).collect();
    for (m, s) in many.iter().zip(&sequential) {
        assert_eq!(m.records, s.records, "{}", s.scheme);
    }
}

#[test]
fn adaptive_runs_are_deterministic() {
    for policy in [
        CutPolicySpec::Greedy,
        CutPolicySpec::Bandit { epsilon: 0.3 },
    ] {
        let a = run(None, policy);
        let b = run(None, policy);
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra, rb, "{policy:?}");
        }
    }
}

#[test]
fn fixed_policy_matches_the_implicit_default() {
    // `cut_policy: Fixed` is the serde default; an explicit Fixed run
    // must be byte-identical to a config that never mentions policies.
    let explicit = run(None, CutPolicySpec::Fixed);
    let implicit = Runner::new(
        ExperimentConfig::builder()
            .clients(6)
            .groups(2)
            .rounds(6)
            .batch_size(4)
            .eval_every(3)
            .learning_rate(0.1)
            .dataset(DatasetConfig {
                classes: 3,
                samples_per_class: 8,
                test_per_class: 4,
                image_size: 8,
            })
            .model(ModelKind::Mlp {
                hidden: vec![16, 16],
            })
            .scenario(Scenario::AdaptiveCut(AdaptiveCutSpec::default()))
            .seed(9)
            .build()
            .unwrap(),
    )
    .unwrap()
    .run(SchemeKind::Gsfl)
    .unwrap();
    assert_eq!(explicit.records, implicit.records);
}

#[test]
fn every_split_scheme_supports_adaptive_cuts() {
    for kind in [
        SchemeKind::VanillaSplit,
        SchemeKind::SplitFed,
        SchemeKind::Gsfl,
    ] {
        let result = Runner::new(config(None, CutPolicySpec::Greedy))
            .unwrap()
            .run(kind)
            .unwrap();
        assert_eq!(result.records.len(), 6, "{kind}");
        assert!(result.total_latency_s() > 0.0, "{kind}");
        assert!(
            result.records.last().unwrap().test_accuracy.is_some(),
            "{kind}"
        );
    }
}
