//! Parallel-client execution must be invisible in the results: training
//! the FedAvg-style schemes with any forced thread count has to produce
//! records byte-identical to the sequential path. Work is partitioned at
//! fixed client/group boundaries and aggregated in fixed order, so this
//! holds by construction — and this suite pins it.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::results::RoundRecord;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

fn config(threads: Option<usize>) -> ExperimentConfig {
    let mut b = ExperimentConfig::builder()
        .clients(8)
        .groups(4)
        .rounds(3)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.1)
        .momentum(0.9)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 10,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .seed(17);
    if let Some(n) = threads {
        b = b.client_threads(n);
    }
    b.build().unwrap()
}

fn assert_records_bitwise_equal(
    kind: SchemeKind,
    a: &[RoundRecord],
    b: &[RoundRecord],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{kind}: round count ({label})");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{kind}: train_loss ({label})"
        );
        assert_eq!(
            ra.test_accuracy.map(f64::to_bits),
            rb.test_accuracy.map(f64::to_bits),
            "{kind}: test_accuracy ({label})"
        );
        assert_eq!(
            ra.round_latency_s.to_bits(),
            rb.round_latency_s.to_bits(),
            "{kind}: latency ({label})"
        );
        assert_eq!(ra.bytes_up, rb.bytes_up, "{kind}: bytes_up ({label})");
        assert_eq!(ra.bytes_down, rb.bytes_down, "{kind}: bytes_down ({label})");
    }
}

#[test]
fn forced_thread_counts_are_byte_identical_to_sequential() {
    // Federated and SplitFed fan clients out; GSFL fans groups out.
    for kind in [
        SchemeKind::Federated,
        SchemeKind::SplitFed,
        SchemeKind::Gsfl,
    ] {
        let sequential = Runner::new(config(Some(1))).unwrap().run(kind).unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = Runner::new(config(Some(threads)))
                .unwrap()
                .run(kind)
                .unwrap();
            assert_records_bitwise_equal(
                kind,
                &sequential.records,
                &parallel.records,
                &format!("{threads} threads"),
            );
        }
    }
}

#[test]
fn budgeted_default_matches_forced_sequential() {
    // The default (budget-driven) fan-out must also be invisible.
    for kind in [SchemeKind::Federated, SchemeKind::SplitFed] {
        let sequential = Runner::new(config(Some(1))).unwrap().run(kind).unwrap();
        let budgeted = Runner::new(config(None)).unwrap().run(kind).unwrap();
        assert_records_bitwise_equal(kind, &sequential.records, &budgeted.records, "budgeted");
    }
}

#[test]
fn client_threads_survives_config_serde() {
    let cfg = config(Some(3));
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.client_threads, Some(3));
}
