//! The fast engine versus the preserved pre-optimization engine
//! (`KernelMode::Reference`).
//!
//! For MLP models every fast kernel on the training path preserves the
//! per-element f32 reduction order, so whole experiments must be
//! **byte-identical** across engines. For conv models the batched
//! weight-gradient GEMM regroups the sum (epsilon-level), so a
//! single-round comparison must agree tightly but not bitwise.
//!
//! NOTE: the kernel mode is process-global, so everything lives in one
//! `#[test]` (this file is its own test binary) — no other test in this
//! process can observe the temporary Reference mode.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::tensor::{set_kernel_mode, KernelMode};

fn mlp_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(3)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.1)
        .momentum(0.9)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 10,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .seed(23)
        .build()
        .unwrap()
}

fn cnn_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(4)
        .groups(2)
        .rounds(1)
        .batch_size(8)
        .eval_every(1)
        .learning_rate(0.05)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::DeepThin {
            conv1: 4,
            conv2: 8,
            fc: 16,
        })
        .seed(29)
        .build()
        .unwrap()
}

#[test]
fn reference_engine_reproduces_fast_engine() {
    // --- MLP: byte-identical across engines, all schemes -------------
    for kind in SchemeKind::all() {
        set_kernel_mode(KernelMode::Fast);
        let fast = Runner::new(mlp_config()).unwrap().run(kind).unwrap();
        set_kernel_mode(KernelMode::Reference);
        let reference = Runner::new(mlp_config()).unwrap().run(kind).unwrap();
        set_kernel_mode(KernelMode::Fast);
        assert_eq!(fast.records.len(), reference.records.len(), "{kind}");
        for (f, r) in fast.records.iter().zip(&reference.records) {
            assert_eq!(
                f.train_loss.to_bits(),
                r.train_loss.to_bits(),
                "{kind}: MLP training must be bit-identical across engines"
            );
            assert_eq!(
                f.test_accuracy.map(f64::to_bits),
                r.test_accuracy.map(f64::to_bits),
                "{kind}: MLP accuracy must be bit-identical across engines"
            );
        }
    }

    // --- CNN: one round, tight numeric agreement ---------------------
    set_kernel_mode(KernelMode::Fast);
    let fast = Runner::new(cnn_config())
        .unwrap()
        .run(SchemeKind::SplitFed)
        .unwrap();
    set_kernel_mode(KernelMode::Reference);
    let reference = Runner::new(cnn_config())
        .unwrap()
        .run(SchemeKind::SplitFed)
        .unwrap();
    set_kernel_mode(KernelMode::Fast);
    let fl = fast.records[0].train_loss;
    let rl = reference.records[0].train_loss;
    assert!(
        (fl - rl).abs() <= 1e-4 * fl.abs().max(1.0),
        "CNN single-round loss diverged: fast={fl}, reference={rl}"
    );
}
