//! End-to-end convergence: every scheme must actually learn the synthetic
//! traffic-sign task, and the per-round convergence ordering of the
//! paper's Fig. 2(a) must hold (CL ≈ SL ≥ GSFL > FL).

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind, PartitionStrategy};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

/// A small but non-trivial experiment that trains in a few seconds.
/// Mild augmentation keeps the task learnable within a handful of rounds
/// while leaving enough intra-class variation to be non-trivial.
fn config(rounds: usize) -> ExperimentConfig {
    let base = gsfl::data::synth::Augment::default();
    let mild = gsfl::data::synth::Augment {
        rotation: base.rotation * 0.5,
        translation: base.translation * 0.5,
        scale_jitter: base.scale_jitter * 0.5,
        brightness: base.brightness * 0.5,
        noise_std: base.noise_std * 0.5,
        background_jitter: base.background_jitter,
    };
    ExperimentConfig::builder()
        .clients(8)
        .groups(2)
        .rounds(rounds)
        .batch_size(8)
        .learning_rate(0.1)
        .eval_every(rounds.max(1))
        .partition(PartitionStrategy::Dirichlet(1.0))
        .augment(mild)
        .dataset(DatasetConfig {
            classes: 6,
            samples_per_class: 30,
            test_per_class: 10,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![32] })
        .seed(11)
        .build()
        .expect("valid config")
}

#[test]
fn every_scheme_learns_above_chance() {
    let runner = Runner::new(config(8)).unwrap();
    // Chance on 6 classes ≈ 16.7%.
    for kind in SchemeKind::all() {
        let result = runner.run(kind).unwrap();
        assert!(
            result.final_accuracy_pct() > 40.0,
            "{kind} stuck at {:.1}%",
            result.final_accuracy_pct()
        );
    }
}

#[test]
fn centralized_and_split_reach_high_accuracy() {
    let runner = Runner::new(config(12)).unwrap();
    for kind in [SchemeKind::Centralized, SchemeKind::VanillaSplit] {
        let result = runner.run(kind).unwrap();
        assert!(
            result.final_accuracy_pct() > 85.0,
            "{kind} only reached {:.1}%",
            result.final_accuracy_pct()
        );
    }
}

#[test]
fn round_convergence_ordering_matches_paper() {
    // Fig. 2(a) shape at fixed, small round budget: sequential training
    // (CL/SL) is at least as accurate per round as group-averaged GSFL,
    // which beats 8-way-averaged FL.
    let runner = Runner::new(config(10)).unwrap();
    let sl = runner.run(SchemeKind::VanillaSplit).unwrap();
    let gsfl = runner.run(SchemeKind::Gsfl).unwrap();
    let fl = runner.run(SchemeKind::Federated).unwrap();
    let acc = |r: &gsfl::core::results::RunResult| r.final_accuracy_pct();
    assert!(
        acc(&sl) + 5.0 >= acc(&gsfl),
        "SL {:.1}% should not trail GSFL {:.1}% by more than noise",
        acc(&sl),
        acc(&gsfl)
    );
    assert!(
        acc(&gsfl) > acc(&fl),
        "GSFL {:.1}% must beat FL {:.1}% per round",
        acc(&gsfl),
        acc(&fl)
    );
}

#[test]
fn training_reduces_loss_monotonically_ish() {
    let runner = Runner::new(config(10)).unwrap();
    let result = runner.run(SchemeKind::Gsfl).unwrap();
    let first = result.records.first().unwrap().train_loss;
    let last = result.records.last().unwrap().train_loss;
    assert!(
        last < first * 0.5,
        "loss should at least halve: {first:.3} → {last:.3}"
    );
}

#[test]
fn cnn_path_works_end_to_end() {
    // The DeepThin CNN on tiny images, few rounds — exercises conv/pool
    // forward+backward through the full GSFL pipeline.
    let config = ExperimentConfig::builder()
        .clients(4)
        .groups(2)
        .rounds(3)
        .batch_size(8)
        .eval_every(3)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 12,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::DeepThin {
            conv1: 4,
            conv2: 8,
            fc: 16,
        })
        .seed(3)
        .build()
        .unwrap();
    let runner = Runner::new(config).unwrap();
    let result = runner.run(SchemeKind::Gsfl).unwrap();
    assert_eq!(result.records.len(), 3);
    assert!(result.final_accuracy_pct() > 20.0);
}
