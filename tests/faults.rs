//! Fault-tolerant rounds, end to end: every scheme survives the `chaos`
//! preset, fault realizations are thread-count invariant, quorum-missed
//! rounds leave the global model untouched, and a recovery spec that
//! never fires is the identity.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::recovery::{DeadlinePolicy, RecoverySpec};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::{ChaosSpec, Scenario, StragglerSpec};
use gsfl::wireless::FaultSpec;

fn tiny(scenario: Scenario, recovery: RecoverySpec) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(6)
        .batch_size(4)
        .eval_every(3)
        .learning_rate(0.1)
        .dataset(DatasetConfig {
            classes: 3,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .scenario(scenario)
        .recovery(recovery)
        .seed(5)
        .build()
        .unwrap()
}

/// Loss + crashes only, rates chosen per test.
fn faults_only(loss: f64, crash: f64) -> Scenario {
    Scenario::Chaos(ChaosSpec {
        faults: FaultSpec {
            loss_prob: loss,
            crash_prob: crash,
            ..FaultSpec::default()
        },
        stragglers: StragglerSpec {
            probability: 0.0,
            slowdown: 1.0,
        },
    })
}

/// Every scheme must run the full chaos preset — loss, crashes,
/// dropouts, AP outages and stragglers at once — to completion, with a
/// deadline and quorum armed, and still produce an evaluated model.
#[test]
fn every_scheme_completes_under_chaos() {
    let recovery = RecoverySpec {
        deadline: Some(DeadlinePolicy {
            deadline_s: 30.0,
            min_quorum_frac: 0.3,
        }),
        backups: 1,
    };
    for kind in SchemeKind::all() {
        let config = tiny(Scenario::Chaos(ChaosSpec::default()), recovery);
        let result = Runner::new(config).unwrap().run(kind).unwrap();
        assert_eq!(result.records.len(), 6, "{kind}");
        assert!(result.total_latency_s() > 0.0, "{kind}");
        let acc = result.records.last().unwrap().test_accuracy;
        assert!(acc.is_some_and(|a| a.is_finite() && a >= 0.0), "{kind}");
    }
}

/// Fault draws are pure functions of (seed, client, round, transfer) —
/// never of host parallelism — so a chaos run must be byte-identical at
/// any thread count.
#[test]
fn chaos_runs_are_thread_count_invariant() {
    let recovery = RecoverySpec {
        deadline: Some(DeadlinePolicy {
            deadline_s: 30.0,
            min_quorum_frac: 0.3,
        }),
        backups: 1,
    };
    for kind in [
        SchemeKind::Gsfl,
        SchemeKind::Federated,
        SchemeKind::SplitFed,
    ] {
        let run = |threads: usize| {
            let config = ExperimentConfig::builder()
                .clients(6)
                .groups(2)
                .rounds(6)
                .batch_size(4)
                .eval_every(3)
                .learning_rate(0.1)
                .dataset(DatasetConfig {
                    classes: 3,
                    samples_per_class: 8,
                    test_per_class: 4,
                    image_size: 8,
                })
                .model(ModelKind::Mlp { hidden: vec![16] })
                .scenario(Scenario::Chaos(ChaosSpec::default()))
                .recovery(recovery)
                .client_threads(threads)
                .seed(5)
                .build()
                .unwrap();
            Runner::new(config).unwrap().run(kind).unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.records.len(), b.records.len(), "{kind}");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(
                ra, rb,
                "{kind}: fault realizations must not depend on threads"
            );
        }
    }
}

/// Driving schemes round by round under harsh faults and a tight
/// deadline: quorum-missed rounds must occur, be flagged in the round's
/// fault stats, and leave the global parameters bitwise unchanged.
#[test]
fn quorum_missed_rounds_leave_global_unchanged() {
    let recovery = RecoverySpec {
        deadline: Some(DeadlinePolicy {
            deadline_s: 2.0,
            min_quorum_frac: 0.9,
        }),
        backups: 0,
    };
    for kind in [
        SchemeKind::Federated,
        SchemeKind::Gsfl,
        SchemeKind::SplitFed,
        SchemeKind::VanillaSplit,
    ] {
        let config = tiny(faults_only(0.4, 0.25), recovery);
        let runner = Runner::new(config).unwrap();
        let ctx = runner.context();
        let mut scheme = kind.scheme();
        scheme.init(ctx).unwrap();
        let mut skipped = 0usize;
        for round in 1..=6usize {
            let before = scheme.global_params().unwrap();
            let out = scheme.run_round(ctx, round).unwrap();
            if !out.latency.faults.quorum_met {
                skipped += 1;
                assert!(
                    !out.aggregated,
                    "{kind}: a skipped round must not aggregate"
                );
                assert_eq!(out.train_loss, 0.0, "{kind}");
                let after = scheme.global_params().unwrap();
                assert_eq!(
                    before, after,
                    "{kind}: round {round} missed quorum but changed the model"
                );
            }
        }
        assert!(
            skipped > 0,
            "{kind}: harsh faults + tight deadline must skip rounds"
        );
    }
}

/// A recovery spec that never fires — a deadline far beyond any round
/// and backups with no crashes to cover — prices and trains exactly
/// like no recovery spec at all.
#[test]
fn generous_recovery_on_clean_channel_is_identity() {
    let generous = RecoverySpec {
        deadline: Some(DeadlinePolicy {
            deadline_s: 1e9,
            min_quorum_frac: 0.1,
        }),
        backups: 2,
    };
    for kind in SchemeKind::all() {
        let base = Runner::new(tiny(Scenario::Static, RecoverySpec::default()))
            .unwrap()
            .run(kind)
            .unwrap();
        let armed = Runner::new(tiny(Scenario::Static, generous))
            .unwrap()
            .run(kind)
            .unwrap();
        assert_eq!(base.records.len(), armed.records.len(), "{kind}");
        for (ra, rb) in base.records.iter().zip(&armed.records) {
            assert_eq!(
                ra, rb,
                "{kind}: an unfired recovery spec must be the identity"
            );
        }
    }
}

/// Fault accounting flows from the wire to the run records: a lossy
/// link shows retries (and only retries), crashes show lost clients.
#[test]
fn fault_accounting_reaches_records() {
    let lossy = Runner::new(tiny(faults_only(0.3, 0.0), RecoverySpec::default()))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    assert!(lossy.total_retries() > 0, "p=0.3 must retransmit");
    assert!(lossy.total_wasted_airtime_bytes() > 0);
    assert_eq!(
        lossy.total_lost_clients(),
        0,
        "loss only delays, never drops"
    );
    assert_eq!(lossy.rounds_skipped(), 0, "no deadline, no skips");

    let crashy = Runner::new(tiny(faults_only(0.0, 0.3), RecoverySpec::default()))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    assert!(crashy.total_lost_clients() > 0, "p=0.3 must crash someone");
    assert_eq!(crashy.total_retries(), 0, "no loss, no retries");
}
