//! End-to-end guarantees of the payload codec layer.
//!
//! * The explicit identity `CompressionSpec` reproduces the pre-codec
//!   golden fixture **byte for byte** — the codec hooks are provably
//!   transparent when every artifact is fp32.
//! * Lossy codecs shrink the charged wire bytes while the raw totals
//!   stay exactly what the identity run moved, and the saved airtime
//!   shows up as lower round latency.
//! * Lossy runs stay deterministic — per seed and per thread count —
//!   because codec streams derive from (seed, client, epoch, step), not
//!   from scheduling.

use gsfl::core::compression::CompressionSpec;
use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::results::RoundRecord;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::nn::codec::CodecSpec;
use gsfl::wireless::scenario::NarrowbandSpec;
use gsfl::wireless::Scenario;
use serde::Serialize;

#[derive(Serialize)]
struct Fixture {
    case: String,
    scheme: String,
    records: Vec<RoundRecord>,
}

fn fixture_config(availability: f64, seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(4)
        .batch_size(4)
        .eval_every(2)
        .learning_rate(0.1)
        .availability(availability)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn explicit_identity_codec_reproduces_the_golden_fixture_byte_identically() {
    let mut fixtures = Vec::new();
    for (label, availability, seed) in [("full", 1.0f64, 7u64), ("churn", 0.7, 11)] {
        let mut config = fixture_config(availability, seed);
        // Explicitly identity on every artifact — not just the default.
        config.compression = CompressionSpec::uniform(CodecSpec::Identity);
        assert!(config.compression.is_transparent());
        let runner = Runner::new(config).unwrap();
        for kind in SchemeKind::all() {
            let result = runner.run(kind).unwrap();
            fixtures.push(Fixture {
                case: label.to_string(),
                scheme: result.scheme,
                records: result.records,
            });
        }
    }
    let got = serde_json::to_string_pretty(&fixtures).unwrap();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/static_round_records.json"
    ))
    .expect("golden fixture present");
    assert_eq!(
        got, golden,
        "an explicit identity CompressionSpec must reproduce the \
         pre-codec golden records byte for byte"
    );
}

fn narrowband_config(compression: CompressionSpec) -> ExperimentConfig {
    let mut cfg = fixture_config(1.0, 7);
    cfg.scenario = Scenario::Narrowband(NarrowbandSpec { frac: 0.1 });
    cfg.compression = compression;
    cfg
}

#[test]
fn lossy_codecs_shrink_wire_bytes_and_airtime_but_not_raw_totals() {
    let identity = Runner::new(narrowband_config(CompressionSpec::default())).unwrap();
    let fp16 = Runner::new(narrowband_config(CompressionSpec::uniform(CodecSpec::Fp16))).unwrap();
    let intq4 = Runner::new(narrowband_config(CompressionSpec::uniform(
        CodecSpec::IntQ { bits: 4 },
    )))
    .unwrap();
    for kind in [
        SchemeKind::VanillaSplit,
        SchemeKind::Gsfl,
        SchemeKind::Federated,
    ] {
        let base = identity.run(kind).unwrap();
        let half = fp16.run(kind).unwrap();
        let quarter = intq4.run(kind).unwrap();
        // Identity: wire == raw, record by record.
        for r in &base.records {
            assert_eq!(r.bytes_up, r.bytes_up_raw, "{kind}");
            assert_eq!(r.bytes_down, r.bytes_down_raw, "{kind}");
        }
        // Lossy: the raw totals are exactly the identity run's traffic
        // (same protocol, same artifacts), while the wire totals shrink
        // and the charged airtime shrinks with them.
        assert_eq!(half.total_raw_bytes(), base.total_bytes(), "{kind}");
        assert_eq!(quarter.total_raw_bytes(), base.total_bytes(), "{kind}");
        assert!(half.total_bytes() < base.total_bytes(), "{kind}");
        assert!(quarter.total_bytes() < half.total_bytes(), "{kind}");
        assert!(
            half.total_latency_s() < base.total_latency_s(),
            "{kind}: saved bytes must be saved airtime"
        );
        for r in &half.records {
            // Uplinks are always encoded. Downlinks: split schemes
            // compress the gradient stream; FL's downlink is the fp32
            // broadcast (never transcoded, so never discounted).
            assert!(r.bytes_up < r.bytes_up_raw, "{kind}");
            if kind == SchemeKind::Federated {
                assert_eq!(r.bytes_down, r.bytes_down_raw, "{kind}");
            } else {
                assert!(r.bytes_down < r.bytes_down_raw, "{kind}");
            }
        }
        assert!(half.compression_ratio() < 1.0);
    }
}

#[test]
fn charged_airtime_bytes_are_measured_encode_lengths() {
    // The acceptance criterion for the packed wire format: every byte
    // the latency calculators charge is the `len()` of a `WireBuf` a
    // real encoder produced — not a formula. Build a lossy context,
    // then re-encode each artifact's payload independently and compare
    // the charged `*_wire_bytes` against the buffer lengths.
    use gsfl::core::context::TrainContext;
    use gsfl_tensor::Workspace;

    let comp = CompressionSpec {
        smashed: CodecSpec::IntQ { bits: 6 },
        gradient: CodecSpec::TopK { frac: 0.1 },
        client_model: CodecSpec::Pruned {
            frac: 0.25,
            bits: 4,
        },
        full_model: CodecSpec::Fp16,
        error_feedback: true,
    };
    let ctx = TrainContext::from_config(narrowband_config(comp)).unwrap();
    let costs = &ctx.costs;

    let mut ws = Workspace::new();
    // A real encode of an n-scalar payload, measured.
    let mut real_encode = |spec: &CodecSpec, n: usize| -> u64 {
        let vals: Vec<f32> = (0..n).map(|i| ((i % 17) as f32 - 8.0) * 0.3).collect();
        let mut buf = ws.take_wire();
        spec.build().encode(&vals, 99, &mut ws, &mut buf);
        let len = buf.len() as u64;
        ws.give_wire(buf);
        len
    };

    // Artifact payload sizes in scalars, from the raw accounting; the
    // smashed uplink additionally carries the batch's labels as 4-byte
    // class ids, uncompressed.
    let act_numel = (costs.grad_bytes.as_u64() / 4) as usize;
    let label_bytes = costs.smashed_bytes.as_u64() - costs.grad_bytes.as_u64();
    let client_numel = (costs.client_model_bytes.as_u64() / 4) as usize;
    let full_numel = (costs.full_model_bytes.as_u64() / 4) as usize;

    assert_eq!(
        costs.smashed_wire_bytes.as_u64(),
        real_encode(&comp.smashed, act_numel) + label_bytes
    );
    assert_eq!(
        costs.grad_wire_bytes.as_u64(),
        real_encode(&comp.gradient, act_numel)
    );
    assert_eq!(
        costs.client_model_wire_bytes.as_u64(),
        real_encode(&comp.client_model, client_numel)
    );
    assert_eq!(
        costs.full_model_wire_bytes.as_u64(),
        real_encode(&comp.full_model, full_numel)
    );
    // And the per-cut table the planners price against agrees with its
    // own artifacts the same way.
    for costs in ctx.costs_by_cut.values() {
        let act = (costs.grad_bytes.as_u64() / 4) as usize;
        assert_eq!(
            costs.grad_wire_bytes.as_u64(),
            real_encode(&comp.gradient, act)
        );
    }
}

#[test]
fn lossy_runs_are_deterministic_per_seed() {
    let cfg = narrowband_config(CompressionSpec {
        smashed: CodecSpec::IntQ { bits: 8 },
        gradient: CodecSpec::IntQ { bits: 8 },
        client_model: CodecSpec::TopK { frac: 0.25 },
        full_model: CodecSpec::TopK { frac: 0.25 },
        error_feedback: true,
    });
    let a = Runner::new(cfg.clone()).unwrap();
    let b = Runner::new(cfg).unwrap();
    for kind in SchemeKind::all() {
        let ra = a.run(kind).unwrap();
        let rb = b.run(kind).unwrap();
        assert_eq!(ra.records.len(), rb.records.len(), "{kind}");
        for (x, y) in ra.records.iter().zip(&rb.records) {
            assert_eq!(x, y, "{kind}: lossy runs must reproduce bit-for-bit");
        }
    }
}

#[test]
fn lossy_runs_are_thread_count_invariant() {
    // Codec streams derive from (seed, client, epoch, step) — never from
    // which host thread ran the client — so the parallel schemes stay
    // byte-identical under any fan-out.
    let base = narrowband_config(CompressionSpec {
        smashed: CodecSpec::IntQ { bits: 6 },
        gradient: CodecSpec::Fp16,
        client_model: CodecSpec::TopK { frac: 0.5 },
        full_model: CodecSpec::IntQ { bits: 8 },
        error_feedback: true,
    });
    let mut solo = base.clone();
    solo.client_threads = Some(1);
    let mut wide = base;
    wide.client_threads = Some(4);
    let solo = Runner::new(solo).unwrap();
    let wide = Runner::new(wide).unwrap();
    for kind in [
        SchemeKind::Federated,
        SchemeKind::SplitFed,
        SchemeKind::Gsfl,
    ] {
        let a = solo.run(kind).unwrap();
        let b = wide.run(kind).unwrap();
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x, y, "{kind}: thread count must not move a bit");
        }
    }
}

#[test]
fn fp16_still_learns() {
    // The near-lossless codec must not wreck convergence: final
    // accuracy lands in the same neighbourhood as uncompressed training.
    let mut cfg = narrowband_config(CompressionSpec::uniform(CodecSpec::Fp16));
    cfg.rounds = 6;
    let base_cfg = {
        let mut c = narrowband_config(CompressionSpec::default());
        c.rounds = 6;
        c
    };
    let lossy = Runner::new(cfg).unwrap().run(SchemeKind::Gsfl).unwrap();
    let exact = Runner::new(base_cfg)
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    assert!(
        lossy.best_accuracy_pct() >= exact.best_accuracy_pct() - 10.0,
        "fp16 {} vs fp32 {}",
        lossy.best_accuracy_pct(),
        exact.best_accuracy_pct()
    );
}
