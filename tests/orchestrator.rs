//! Orchestrator determinism: plan-driven rounds must stay bit-identical
//! across host thread counts and fresh runners — including the seeded
//! bandit, whose exploration stream derives from the experiment seed —
//! and the default static path must be indistinguishable from an
//! explicitly configured `OrchestratorSpec::Static`.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::orchestrator::OrchestratorSpec;
use gsfl::core::results::RunResult;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::TraceReplaySpec;
use gsfl::wireless::Scenario;

/// A small run over the bundled diurnal trace, so orchestrators see
/// genuinely swinging per-round conditions (and coverage gaps).
fn config(spec: OrchestratorSpec, threads: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(4)
        .batch_size(8)
        .eval_every(1)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 10,
            test_per_class: 5,
            image_size: 8,
        })
        .model(ModelKind::Mlp {
            hidden: vec![16, 8],
        })
        .scenario(Scenario::TraceReplay(TraceReplaySpec::default()))
        .orchestrator(spec)
        .client_threads(threads)
        .seed(11)
        .build()
        .unwrap()
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: round count");
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(
            ra.train_loss.to_bits(),
            rb.train_loss.to_bits(),
            "{label}: train_loss round {}",
            ra.round
        );
        assert_eq!(
            ra.round_latency_s.to_bits(),
            rb.round_latency_s.to_bits(),
            "{label}: round_latency round {}",
            ra.round
        );
        assert_eq!(
            ra.test_accuracy.map(f64::to_bits),
            rb.test_accuracy.map(f64::to_bits),
            "{label}: test_accuracy round {}",
            ra.round
        );
        assert_eq!(
            ra.bytes_up, rb.bytes_up,
            "{label}: bytes_up round {}",
            ra.round
        );
        assert_eq!(
            ra.bytes_down, rb.bytes_down,
            "{label}: bytes_down round {}",
            ra.round
        );
    }
}

/// Greedy and bandit plans must not depend on how many host threads the
/// round fans out over — group/replica work is independent and the plan
/// is decided before the fan-out.
#[test]
fn orchestrated_runs_bit_identical_across_thread_counts() {
    let specs = [
        ("greedy", OrchestratorSpec::Greedy),
        ("bandit", OrchestratorSpec::Bandit { epsilon: 0.2 }),
    ];
    for (name, spec) in specs {
        for kind in [
            SchemeKind::Gsfl,
            SchemeKind::SplitFed,
            SchemeKind::Federated,
        ] {
            let one = Runner::new(config(spec, 1)).unwrap().run(kind).unwrap();
            let four = Runner::new(config(spec, 4)).unwrap().run(kind).unwrap();
            assert_bit_identical(&one, &four, &format!("{name}/{kind}"));
        }
    }
}

/// The bandit's ε-exploration stream is seeded from the experiment seed:
/// two fresh runners replay the identical arm sequence.
#[test]
fn seeded_bandit_reproducible_across_fresh_runners() {
    for kind in [SchemeKind::Gsfl, SchemeKind::SplitFed] {
        let spec = OrchestratorSpec::Bandit { epsilon: 0.5 };
        let a = Runner::new(config(spec, 2)).unwrap().run(kind).unwrap();
        let b = Runner::new(config(spec, 2)).unwrap().run(kind).unwrap();
        assert_bit_identical(&a, &b, &format!("bandit-replay/{kind}"));
    }
}

/// `OrchestratorSpec::Static` is the default: configuring it explicitly
/// must change nothing relative to a config that never mentions an
/// orchestrator. (The golden fixtures in `scenario_static_golden.rs` pin
/// the static path against recorded history; this pins the spec wiring.)
#[test]
fn explicit_static_spec_matches_default_config() {
    for kind in SchemeKind::all() {
        let explicit = Runner::new(config(OrchestratorSpec::Static, 2))
            .unwrap()
            .run(kind)
            .unwrap();
        let implicit_cfg = ExperimentConfig::builder()
            .clients(6)
            .groups(2)
            .rounds(4)
            .batch_size(8)
            .eval_every(1)
            .dataset(DatasetConfig {
                classes: 4,
                samples_per_class: 10,
                test_per_class: 5,
                image_size: 8,
            })
            .model(ModelKind::Mlp {
                hidden: vec![16, 8],
            })
            .scenario(Scenario::TraceReplay(TraceReplaySpec::default()))
            .client_threads(2)
            .seed(11)
            .build()
            .unwrap();
        let implicit = Runner::new(implicit_cfg).unwrap().run(kind).unwrap();
        assert_bit_identical(&explicit, &implicit, &format!("static-default/{kind}"));
    }
}
