//! Structural equivalences between schemes:
//!
//! * GSFL with M = N singleton groups is *statistically identical* to
//!   SplitFed — same training trajectory, different storage accounting.
//! * GSFL group training on threads is deterministic: repeated runs give
//!   bit-identical records.
//! * Split and full models compute the same function.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::nn::model::Mlp;
use gsfl::nn::split::SplitNetwork;
use gsfl::tensor::Tensor;

fn config(clients: usize, groups: usize) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(clients)
        .groups(groups)
        .rounds(4)
        .batch_size(8)
        .eval_every(2)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 16,
            test_per_class: 6,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .seed(21)
        .build()
        .unwrap()
}

#[test]
fn gsfl_with_singleton_groups_matches_splitfed_trajectory() {
    let runner = Runner::new(config(6, 6)).unwrap();
    let gsfl = runner.run(SchemeKind::Gsfl).unwrap();
    let sfl = runner.run(SchemeKind::SplitFed).unwrap();
    assert_eq!(gsfl.records.len(), sfl.records.len());
    for (a, b) in gsfl.records.iter().zip(&sfl.records) {
        assert!(
            (a.train_loss - b.train_loss).abs() < 1e-9,
            "round {}: losses {} vs {}",
            a.round,
            a.train_loss,
            b.train_loss
        );
        assert_eq!(a.test_accuracy, b.test_accuracy, "round {}", a.round);
    }
    // The storage accounting is where they differ: SFL keeps N replicas,
    // GSFL(M=N) also N — but at the paper's M=6 < N the gap appears.
    assert_eq!(gsfl.server_storage_bytes, sfl.server_storage_bytes);
}

#[test]
fn gsfl_storage_is_m_out_of_n_of_splitfed() {
    let runner = Runner::new(config(6, 2)).unwrap();
    let gsfl = runner.run(SchemeKind::Gsfl).unwrap();
    let sfl = runner.run(SchemeKind::SplitFed).unwrap();
    assert_eq!(gsfl.server_storage_bytes * 3, sfl.server_storage_bytes);
}

#[test]
fn parallel_group_training_is_deterministic() {
    let runner = Runner::new(config(8, 4)).unwrap();
    let a = runner.run(SchemeKind::Gsfl).unwrap();
    let b = runner.run(SchemeKind::Gsfl).unwrap();
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits());
        assert_eq!(
            ra.test_accuracy.map(f64::to_bits),
            rb.test_accuracy.map(f64::to_bits)
        );
    }
}

#[test]
fn split_model_computes_same_function_as_whole() {
    let whole = Mlp::new(12, &[10, 8], 3, 5).into_sequential();
    for cut in 1..whole.depth() {
        let mut reference = whole.clone();
        let mut split = SplitNetwork::split(whole.clone(), cut).unwrap();
        let x = Tensor::from_fn(&[4, 12], |i| ((i * 7) % 13) as f32 * 0.1 - 0.6);
        let expect = reference.forward(&x).unwrap();
        let smashed = split.client.forward(&x).unwrap();
        let got = split.server.forward(&smashed).unwrap();
        assert!(
            got.approx_eq(&expect, 1e-5),
            "cut {cut} changes the function"
        );
    }
}

#[test]
fn all_schemes_share_identical_data_and_init() {
    // Two runners from the same config produce identical contexts; the
    // first evaluation of CL and SL (same model init, before divergence)
    // must agree at round 0 semantics — we check the shared context
    // instead: shard sizes and group assignment.
    let r1 = Runner::new(config(6, 3)).unwrap();
    let r2 = Runner::new(config(6, 3)).unwrap();
    assert_eq!(r1.context().groups, r2.context().groups);
    let sizes1: Vec<usize> = r1.context().train_shards.iter().map(|s| s.len()).collect();
    let sizes2: Vec<usize> = r2.context().train_shards.iter().map(|s| s.len()).collect();
    assert_eq!(sizes1, sizes2);
}
