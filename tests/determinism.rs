//! Whole-stack determinism and seed-sensitivity: the same seed must give
//! bit-identical experiments end to end; a different seed must change
//! them.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind};
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(3)
        .rounds(3)
        .batch_size(8)
        .eval_every(1)
        .dataset(DatasetConfig {
            classes: 4,
            samples_per_class: 10,
            test_per_class: 5,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![12] })
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn same_seed_bit_identical_across_fresh_runners() {
    for kind in SchemeKind::all() {
        let a = Runner::new(config(9)).unwrap().run(kind).unwrap();
        let b = Runner::new(config(9)).unwrap().run(kind).unwrap();
        assert_eq!(a.records.len(), b.records.len(), "{kind}");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits(), "{kind}");
            assert_eq!(
                ra.round_latency_s.to_bits(),
                rb.round_latency_s.to_bits(),
                "{kind}"
            );
            assert_eq!(
                ra.test_accuracy.map(f64::to_bits),
                rb.test_accuracy.map(f64::to_bits),
                "{kind}"
            );
            assert_eq!(ra.bytes_up, rb.bytes_up, "{kind}");
        }
    }
}

#[test]
fn different_seed_changes_trajectory() {
    let a = Runner::new(config(1))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    let b = Runner::new(config(2))
        .unwrap()
        .run(SchemeKind::Gsfl)
        .unwrap();
    let differs =
        a.records.iter().zip(&b.records).any(|(ra, rb)| {
            ra.train_loss != rb.train_loss || ra.round_latency_s != rb.round_latency_s
        });
    assert!(differs, "seeds 1 and 2 gave identical runs");
}

#[test]
fn csv_and_json_outputs_round_trip() {
    let result = Runner::new(config(5))
        .unwrap()
        .run(SchemeKind::VanillaSplit)
        .unwrap();
    let dir = std::env::temp_dir().join("gsfl_determinism_test");
    let stem = dir.join("sl_run");
    result.write_to(&stem).unwrap();
    let csv = std::fs::read_to_string(stem.with_extension("csv")).unwrap();
    assert!(csv.lines().count() > 1);
    let json = std::fs::read_to_string(stem.with_extension("json")).unwrap();
    let back: gsfl::core::results::RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.records.len(), result.records.len());
    std::fs::remove_dir_all(&dir).ok();
}
