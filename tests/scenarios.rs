//! Time-varying wireless scenarios, end to end: every preset trains
//! through the full session stack, runs are deterministic, and each
//! preset bends per-round latency the way its physics says it should.

use gsfl::core::config::{DatasetConfig, ExperimentConfig, ModelKind, WirelessConfig};
use gsfl::core::context::TrainContext;
use gsfl::core::runner::Runner;
use gsfl::core::scheme::SchemeKind;
use gsfl::wireless::scenario::{
    CongestionSpec, DiurnalSpec, DropoutSpec, MobilitySpec, Scenario, StragglerSpec,
};

/// A tiny config; `fading: false` isolates the scenario's own
/// time-variation (static rounds become exactly repeatable).
fn tiny(scenario: Scenario, fading: bool) -> ExperimentConfig {
    ExperimentConfig::builder()
        .clients(6)
        .groups(2)
        .rounds(6)
        .batch_size(4)
        .eval_every(3)
        .learning_rate(0.1)
        .wireless(WirelessConfig {
            fading,
            ..WirelessConfig::default()
        })
        .dataset(DatasetConfig {
            classes: 3,
            samples_per_class: 8,
            test_per_class: 4,
            image_size: 8,
        })
        .model(ModelKind::Mlp { hidden: vec![16] })
        .scenario(scenario)
        .seed(5)
        .build()
        .unwrap()
}

fn round_latencies(config: ExperimentConfig, kind: SchemeKind) -> Vec<f64> {
    Runner::new(config)
        .unwrap()
        .run(kind)
        .unwrap()
        .records
        .iter()
        .map(|r| r.round_latency_s)
        .collect()
}

#[test]
fn every_preset_trains_end_to_end() {
    for scenario in Scenario::presets() {
        for kind in [SchemeKind::Gsfl, SchemeKind::Federated] {
            let result = Runner::new(tiny(scenario, true))
                .unwrap()
                .run(kind)
                .unwrap();
            assert_eq!(result.records.len(), 6, "{}/{kind}", scenario.name());
            assert!(result.total_latency_s() > 0.0, "{}/{kind}", scenario.name());
            assert!(
                result.records.last().unwrap().test_accuracy.is_some(),
                "{}/{kind}",
                scenario.name()
            );
        }
    }
}

#[test]
fn every_preset_is_deterministic() {
    for scenario in Scenario::presets() {
        let a = Runner::new(tiny(scenario, true))
            .unwrap()
            .run(SchemeKind::Gsfl)
            .unwrap();
        let b = Runner::new(tiny(scenario, true))
            .unwrap()
            .run(SchemeKind::Gsfl)
            .unwrap();
        assert_eq!(a.records.len(), b.records.len(), "{}", scenario.name());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra, rb, "{}", scenario.name());
        }
    }
}

#[test]
fn static_rounds_repeat_exactly_without_fading() {
    let lats = round_latencies(tiny(Scenario::Static, false), SchemeKind::VanillaSplit);
    for (i, l) in lats.iter().enumerate() {
        assert_eq!(*l, lats[0], "round {}: static must not vary", i + 1);
    }
}

#[test]
fn mobility_varies_per_round_latency() {
    let scenario = Scenario::Mobility(MobilitySpec {
        min_m: 20.0,
        max_m: 200.0,
        epoch_rounds: 3,
    });
    let lats = round_latencies(tiny(scenario, false), SchemeKind::VanillaSplit);
    assert!(
        lats.iter().any(|&l| (l - lats[0]).abs() > 1e-12),
        "mobility must change round latency: {lats:?}"
    );
}

#[test]
fn diurnal_congestion_slows_trough_rounds() {
    // Period 6 with trough 0.25: round 3 sits at the congestion trough,
    // rounds 6 back near the peak. Communication over a quarter of the
    // band must be strictly slower.
    let scenario = Scenario::Diurnal(DiurnalSpec {
        period_rounds: 6,
        trough_frac: 0.25,
    });
    let diurnal = round_latencies(tiny(scenario, false), SchemeKind::VanillaSplit);
    let baseline = round_latencies(tiny(Scenario::Static, false), SchemeKind::VanillaSplit);
    assert!(
        diurnal[2] > baseline[2],
        "trough round must be slower: {} vs {}",
        diurnal[2],
        baseline[2]
    );
    assert!(
        diurnal[2] > diurnal[5],
        "trough must be slower than the next peak: {diurnal:?}"
    );
}

#[test]
fn congestion_spikes_slow_every_affected_round() {
    // probability 1.0: every round spikes down to a tenth of the band.
    let scenario = Scenario::Congested(CongestionSpec {
        probability: 1.0,
        frac: 0.1,
    });
    let spiked = round_latencies(tiny(scenario, false), SchemeKind::VanillaSplit);
    let baseline = round_latencies(tiny(Scenario::Static, false), SchemeKind::VanillaSplit);
    for (r, (s, b)) in spiked.iter().zip(&baseline).enumerate() {
        assert!(s > b, "round {}: congested {s} must exceed {b}", r + 1);
    }
}

#[test]
fn stragglers_slow_every_round() {
    let scenario = Scenario::Stragglers(StragglerSpec {
        probability: 1.0,
        slowdown: 4.0,
    });
    let slowed = round_latencies(tiny(scenario, false), SchemeKind::VanillaSplit);
    let baseline = round_latencies(tiny(Scenario::Static, false), SchemeKind::VanillaSplit);
    for (r, (s, b)) in slowed.iter().zip(&baseline).enumerate() {
        assert!(s > b, "round {}: straggling {s} must exceed {b}", r + 1);
    }
}

#[test]
fn dropouts_shrink_participation() {
    let config = tiny(Scenario::Dropouts(DropoutSpec { probability: 0.5 }), false);
    assert!(
        (config.availability - 1.0).abs() < 1e-12,
        "churn must come from the environment, not the config"
    );
    let ctx = TrainContext::from_config(config).unwrap();
    let mut out = 0usize;
    let mut participations = Vec::new();
    for round in 1..=6u64 {
        let avail = ctx.available_clients(round);
        out += 6 - avail.len();
        participations.push(avail.len());
    }
    assert!(out > 0, "p=0.5 dropouts must knock clients out");
    assert!(
        participations.iter().any(|&n| n > 0),
        "someone must participate"
    );
    // The conditions snapshot agrees with the participation logic:
    // identical per-client verdicts, and the context's never-empty
    // fallback kicks in exactly when the environment drops everyone.
    for round in 1..=6u64 {
        let cond = ctx.conditions(round).unwrap();
        for c in &cond.clients {
            assert_eq!(c.available, ctx.is_available(round, c.client));
        }
        let from_env = cond.available_clients();
        let from_ctx = ctx.available_clients(round);
        if from_env.is_empty() {
            assert_eq!(from_ctx, vec![(round as usize) % 6]);
        } else {
            assert_eq!(from_ctx, from_env);
        }
    }
}

#[test]
fn dropouts_change_round_traffic() {
    let with_dropouts = Runner::new(tiny(
        Scenario::Dropouts(DropoutSpec { probability: 0.5 }),
        false,
    ))
    .unwrap()
    .run(SchemeKind::Federated)
    .unwrap();
    let baseline = Runner::new(tiny(Scenario::Static, false))
        .unwrap()
        .run(SchemeKind::Federated)
        .unwrap();
    let up = |r: &gsfl::core::results::RunResult| -> Vec<u64> {
        r.records.iter().map(|x| x.bytes_up).collect()
    };
    assert_ne!(
        up(&with_dropouts),
        up(&baseline),
        "dropped clients must not exchange models"
    );
}

#[test]
fn scenario_survives_config_serde() {
    let config = tiny(
        Scenario::Stragglers(StragglerSpec {
            probability: 0.3,
            slowdown: 2.5,
        }),
        true,
    );
    let json = serde_json::to_string(&config).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
    // Old configs without the field still load, defaulting to Static.
    let stripped = json.replace(
        "\"scenario\":{\"Stragglers\":{\"probability\":0.3,\"slowdown\":2.5}},",
        "",
    );
    assert_ne!(stripped, json, "field must have been present");
    let legacy: ExperimentConfig = serde_json::from_str(&stripped).unwrap();
    assert_eq!(legacy.scenario, Scenario::Static);
}
