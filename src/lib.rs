//! # GSFL — group-based split federated learning
//!
//! A from-scratch Rust reproduction of *"Split Federated Learning: Speed
//! up Model Training in Resource-Limited Wireless Networks"* (Zhang, Wu,
//! Hu, Li, Zhang — ICDCS 2023): the GSFL training scheme, its CL / FL /
//! SL / SFL baselines, and the full simulation stack they run on.
//!
//! This meta-crate re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `gsfl-tensor` | dense f32 tensors, matmul, conv, pooling |
//! | [`nn`] | `gsfl-nn` | layers, losses, SGD, **cut-layer splitting**, FedAvg algebra |
//! | [`data`] | `gsfl-data` | synthetic GTSRB, IID/Dirichlet/shard partitioners |
//! | [`wireless`] | `gsfl-wireless` | path loss, fading, Shannon rates, devices |
//! | [`simnet`] | `gsfl-simnet` | deterministic DES with k-slot resources |
//! | [`core`] | `gsfl-core` | the schemes, grouping, latency accounting, runner |
//!
//! # Quickstart
//!
//! Training runs are *sessions*: `Runner::session` streams a
//! [`core::runner::RoundEvent`] per round milestone (started, aggregated,
//! evaluated, finished, stopped), and `Runner::run` drains the same
//! iterator into a final [`core::results::RunResult`]. Early stopping is
//! pluggable via [`core::stop::StopPolicy`]; `Runner::run_many` runs
//! several schemes concurrently against one shared context.
//!
//! ```no_run
//! use gsfl::core::config::ExperimentConfig;
//! use gsfl::core::runner::{RoundEvent, Runner};
//! use gsfl::core::scheme::SchemeKind;
//!
//! # fn main() -> Result<(), gsfl::core::CoreError> {
//! let config = ExperimentConfig::builder()
//!     .clients(30)
//!     .groups(6)
//!     .rounds(50)
//!     .build()?;
//! let runner = Runner::new(config)?;
//!
//! // Stream GSFL round-by-round…
//! let mut session = runner.session(SchemeKind::Gsfl)?;
//! for event in &mut session {
//!     if let RoundEvent::Evaluated { round, accuracy } = event? {
//!         println!("round {round}: {:.1}%", accuracy * 100.0);
//!     }
//! }
//! let gsfl = session.finish();
//!
//! // …and compare against the one-shot SL baseline.
//! let sl = runner.run(SchemeKind::VanillaSplit)?;
//! println!(
//!     "GSFL reached {:.1}% in {:.0}s simulated; SL took {:.0}s",
//!     gsfl.final_accuracy_pct(),
//!     gsfl.total_latency_s(),
//!     sl.total_latency_s()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Wireless scenarios
//!
//! The wireless layer is pluggable behind
//! [`wireless::environment::ChannelModel`]: the default
//! [`wireless::Scenario::Static`] environment reproduces the paper's
//! fixed network, and the time-varying presets (`mobility`, `diurnal`,
//! `congested`, `stragglers`, `dropouts`) inject per-round dynamics —
//! see `examples/scenario_sweep.rs` for a full scheme-ranking sweep:
//!
//! ```no_run
//! use gsfl::core::config::ExperimentConfig;
//! use gsfl::core::runner::Runner;
//! use gsfl::core::scheme::SchemeKind;
//! use gsfl::wireless::Scenario;
//!
//! # fn main() -> Result<(), gsfl::core::CoreError> {
//! let config = ExperimentConfig::builder()
//!     .clients(30)
//!     .groups(6)
//!     .scenario(Scenario::preset("diurnal").expect("built-in"))
//!     .build()?;
//! let result = Runner::new(config)?.run(SchemeKind::Gsfl)?;
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries that regenerate every figure of the paper.

#![deny(missing_docs)]

pub use gsfl_core as core;
pub use gsfl_data as data;
pub use gsfl_nn as nn;
pub use gsfl_simnet as simnet;
pub use gsfl_tensor as tensor;
pub use gsfl_wireless as wireless;
